// Package metrics is the reproduction's dependency-free observability
// layer: atomic counters, gauges, and log-bucketed latency histograms
// collected in a named Registry and exposed in Prometheus text format and
// expvar-style JSON.
//
// The paper's evaluation is measurement-driven — per-window hit-rate
// estimates (§3.5), I/O counts, and the agent's tuning trajectory — so the
// engine, the caches, and the RL tuner all publish into one registry per DB
// (no global state: the experiment harness opens many stores per process).
//
// All metric types are safe for concurrent use; Observe and Snapshot may
// race freely. Snapshots are internally consistent per counter but not
// across counters, which is the usual scrape semantics.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored so a
// counter can never regress).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float64 gauge (atomic via bit-casting).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// NumBuckets is the number of power-of-two histogram buckets: bucket i
// holds observations v with 2^i <= v < 2^(i+1) (bucket 0 additionally
// absorbs v <= 1). 63 buckets cover every positive int64.
const NumBuckets = 63

// Histogram is a log-bucketed histogram of int64 observations — typically
// latencies in nanoseconds, but any magnitude works (write-group sizes,
// scan lengths). Power-of-two buckets keep Observe allocation-free and a
// handful of atomic adds, at the cost of quantiles being exact only to the
// bucket (~2x); linear interpolation inside the bucket recovers most of
// that.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketFor returns the bucket index for v.
func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1 // v >= 2 ⇒ b >= 1
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketLower returns the smallest value bucket i nominally holds.
func BucketLower(i int) int64 { return int64(1) << uint(i) }

// BucketUpper returns the largest value bucket i nominally holds.
func BucketUpper(i int) int64 {
	if i >= 62 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i+1) - 1
}

// Observe records one observation. Values below zero are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketFor(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the time elapsed since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's state, the unit
// of quantile computation and cross-shard merging.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [NumBuckets]int64
}

// Merge accumulates other into s (for aggregating per-shard or per-DB
// histograms).
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) by locating
// the bucket holding the rank-⌈q·count⌉ observation and interpolating
// linearly inside it. Returns 0 for an empty histogram; q >= 1 returns the
// exact observed maximum.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return float64(s.Max)
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		lo, hi := float64(BucketLower(i)), float64(BucketUpper(i))
		if i == 0 {
			lo = 0
		}
		// Cap the bucket's upper edge at the observed max so the top
		// quantiles never exceed a value that was actually recorded.
		if m := float64(s.Max); m >= lo && m < hi {
			hi = m
		}
		frac := float64(rank-cum) / float64(n)
		return lo + (hi-lo)*frac
	}
	return float64(s.Max)
}
