package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges become single
// samples; histograms become summaries with p50/p90/p99 quantile series
// plus _sum, _count and _max samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastBase string
	for _, e := range r.sortedEntries() {
		base := baseName(e.name)
		if base != lastBase {
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, e.kind); err != nil {
				return err
			}
			lastBase = base
		}
		if e.kind == KindHistogram {
			if err := writePromHistogram(w, e); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", e.name, formatFloat(e.value())); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, e *entry) error {
	s := e.hist.Snapshot()
	for _, q := range [...]struct {
		label string
		q     float64
	}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
		name := withLabel(e.name, `quantile="`+q.label+`"`)
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Quantile(q.q))); err != nil {
			return err
		}
	}
	base := baseName(e.name)
	labels := e.name[len(base):]
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, labels, s.Sum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, s.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_max%s %d\n", base, labels, s.Max)
	return err
}

// formatFloat renders a value the way Prometheus clients expect: integers
// without an exponent or trailing zeros, everything else in shortest form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
