package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a registered metric for exposition.
type Kind int

// The metric kinds. Func-backed variants share the exposition type of
// their direct counterparts.
const (
	KindCounter Kind = iota
	KindGauge
	KindFloatGauge
	KindHistogram
	KindCounterFunc
	KindGaugeFunc
)

func (k Kind) String() string {
	switch k {
	case KindCounter, KindCounterFunc:
		return "counter"
	case KindGauge, KindFloatGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return "untyped"
}

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	fgauge  *FloatGauge
	hist    *Histogram
	cfunc   func() int64
	gfunc   func() float64
}

// value returns the entry's current scalar value (histograms return their
// observation count; use hist for detail).
func (e *entry) value() float64 {
	switch e.kind {
	case KindCounter:
		return float64(e.counter.Value())
	case KindGauge:
		return float64(e.gauge.Value())
	case KindFloatGauge:
		return e.fgauge.Value()
	case KindCounterFunc:
		return float64(e.cfunc())
	case KindGaugeFunc:
		return e.gfunc()
	case KindHistogram:
		return float64(e.hist.Snapshot().Count)
	}
	return 0
}

// Registry is a named collection of metrics. Metric names follow the
// Prometheus convention and may carry a fixed label set inline, e.g.
// `cache_shard_hits_total{cache="block",shard="3"}`.
//
// Constructors are get-or-create: asking twice for the same name and kind
// returns the same metric, so independent components can share a series
// without coordinating. Asking for an existing name with a different kind
// panics — that is always a programming error. Func-backed metrics cannot
// be deduplicated (the closure is the metric) and panic on any collision.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// lookup returns the existing entry for name after checking the kind, or
// nil when the name is free. Caller holds r.mu.
func (r *Registry) lookup(name string, kind Kind) *entry {
	e, ok := r.entries[name]
	if !ok {
		return nil
	}
	if e.kind != kind {
		panic(fmt.Sprintf("metrics: %q re-registered as %v (was %v)", name, kind, e.kind))
	}
	return e
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, KindCounter); e != nil {
		return e.counter
	}
	c := &Counter{}
	r.entries[name] = &entry{name: name, help: help, kind: KindCounter, counter: c}
	return c
}

// Gauge returns the integer gauge registered under name, creating it if new.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, KindGauge); e != nil {
		return e.gauge
	}
	g := &Gauge{}
	r.entries[name] = &entry{name: name, help: help, kind: KindGauge, gauge: g}
	return g
}

// FloatGauge returns the float gauge registered under name, creating it if
// new.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, KindFloatGauge); e != nil {
		return e.fgauge
	}
	g := &FloatGauge{}
	r.entries[name] = &entry{name: name, help: help, kind: KindFloatGauge, fgauge: g}
	return g
}

// Histogram returns the histogram registered under name, creating it if new.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, KindHistogram); e != nil {
		return e.hist
	}
	h := &Histogram{}
	r.entries[name] = &entry{name: name, help: help, kind: KindHistogram, hist: h}
	return h
}

// CounterFunc registers a counter whose value is computed by fn at
// exposition time — the bridge for pre-existing engine counters. Panics if
// name is taken.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of func metric %q", name))
	}
	r.entries[name] = &entry{name: name, help: help, kind: KindCounterFunc, cfunc: fn}
}

// GaugeFunc registers a gauge computed by fn at exposition time. Panics if
// name is taken.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of func metric %q", name))
	}
	r.entries[name] = &entry{name: name, help: help, kind: KindGaugeFunc, gfunc: fn}
}

// sortedEntries returns the entries ordered by name (label-stripped base
// name first, so all series of one metric are adjacent as Prometheus
// requires).
func (r *Registry) sortedEntries() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		bi, bj := baseName(out[i].name), baseName(out[j].name)
		if bi != bj {
			return bi < bj
		}
		return out[i].name < out[j].name
	})
	return out
}

// baseName strips an inline label set from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel appends one label=value pair to a (possibly already labeled)
// metric name.
func withLabel(name, label string) string {
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// HistogramSummary is the exported JSON shape of one histogram.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summarize reduces a snapshot to the standard summary quantiles.
func Summarize(s HistogramSnapshot) HistogramSummary {
	return HistogramSummary{
		Count: s.Count,
		Sum:   s.Sum,
		Max:   s.Max,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

// Snapshot returns every metric's current value keyed by name: scalars as
// numbers, histograms as HistogramSummary. This is the payload served under
// /debug/vars and embedded in unified stats snapshots.
func (r *Registry) Snapshot() map[string]interface{} {
	out := make(map[string]interface{})
	for _, e := range r.sortedEntries() {
		switch e.kind {
		case KindHistogram:
			out[e.name] = Summarize(e.hist.Snapshot())
		case KindCounter, KindCounterFunc, KindGauge:
			out[e.name] = int64(e.value())
		default:
			out[e.name] = e.value()
		}
	}
	return out
}

// EachHistogram calls fn for every registered histogram in name order.
func (r *Registry) EachHistogram(fn func(name string, s HistogramSnapshot)) {
	for _, e := range r.sortedEntries() {
		if e.kind == KindHistogram {
			fn(e.name, e.hist.Snapshot())
		}
	}
}
