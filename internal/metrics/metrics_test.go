package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestMetricsHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 1},
		{4, 2}, {7, 2},
		{8, 3}, {15, 3},
		{1 << 20, 20}, {1<<21 - 1, 20},
		{1<<62 + 1, NumBuckets - 1}, // clamped into the top bucket
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.bucket {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for i := 0; i < NumBuckets-1; i++ {
		if BucketUpper(i)+1 != BucketLower(i+1) {
			t.Errorf("bucket %d upper %d not adjacent to bucket %d lower %d",
				i, BucketUpper(i), i+1, BucketLower(i+1))
		}
		if bucketFor(BucketLower(i+1)) != i+1 || bucketFor(BucketUpper(i)) != i {
			t.Errorf("boundary values of bucket %d misrouted", i)
		}
	}
}

func TestMetricsHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Max != 1000 {
		t.Fatalf("count=%d max=%d", s.Count, s.Max)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum=%d", s.Sum)
	}
	// Log buckets are exact to the bucket: p50 of 1..1000 is 500, which
	// lives in [512,1023)'s predecessor bucket [256,511]. Allow 2x error.
	p50 := s.Quantile(0.5)
	if p50 < 250 || p50 > 1000 {
		t.Errorf("p50 = %v, want within 2x of 500", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 512 || p99 > 1000 {
		t.Errorf("p99 = %v, want in [512,1000]", p99)
	}
	if got := s.Quantile(1.0); got != 1000 {
		t.Errorf("p100 = %v, want exact max 1000", got)
	}
	// Quantiles never exceed the observed max even inside the top bucket.
	var h2 Histogram
	h2.Observe(1025) // bucket [1024,2047]
	if got := h2.Snapshot().Quantile(0.99); got > 1025 {
		t.Errorf("p99 = %v exceeds observed max 1025", got)
	}
}

func TestMetricsHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := int64(1); v <= 100; v++ {
		a.Observe(v)
		b.Observe(v * 1000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged count = %d", s.Count)
	}
	if s.Max != 100_000 {
		t.Fatalf("merged max = %d", s.Max)
	}
	if want := a.Snapshot().Sum + b.Snapshot().Sum; s.Sum != want {
		t.Fatalf("merged sum = %d, want %d", s.Sum, want)
	}
}

func TestMetricsConcurrentObserveSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_nanos", "concurrent test")
	c := reg.Counter("test_total", "concurrent test")
	var writers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			for v := int64(0); v < 10_000; v++ {
				h.Observe(seed*1000 + v)
				c.Inc()
			}
		}(int64(i))
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var n int64
			for _, b := range s.Buckets {
				n += b
			}
			// Snapshots race with in-flight Observes, so bucket totals and
			// the count can skew slightly in either direction — but only by
			// the handful of observations in flight, never wholesale.
			if skew := n - s.Count; skew > 1000 || skew < -1000 {
				t.Errorf("snapshot skew: buckets=%d count=%d", n, s.Count)
				return
			}
			var buf bytes.Buffer
			reg.WritePrometheus(&buf)
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	s := h.Snapshot()
	if s.Count != 40_000 || c.Value() != 40_000 {
		t.Fatalf("count = %d / %d, want 40000", s.Count, c.Value())
	}
}

func TestMetricsRegistryCollisions(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("ops_total", "ops")
	c2 := reg.Counter("ops_total", "ops")
	if c1 != c2 {
		t.Fatal("same-kind re-registration returned a different counter")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
	mustPanic(t, "kind mismatch", func() { reg.Gauge("ops_total", "oops") })
	mustPanic(t, "histogram over counter", func() { reg.Histogram("ops_total", "oops") })
	reg.GaugeFunc("live_gauge", "g", func() float64 { return 1 })
	mustPanic(t, "func duplicate", func() {
		reg.GaugeFunc("live_gauge", "g", func() float64 { return 2 })
	})
	mustPanic(t, "func over counter", func() {
		reg.CounterFunc("ops_total", "oops", func() int64 { return 0 })
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestMetricsPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("adcache_ops_total", "operations served").Add(42)
	reg.FloatGauge("adcache_range_ratio", "range cache share").Set(0.375)
	reg.GaugeFunc(`lsm_level_files{level="0"}`, "files per level", func() float64 { return 3 })
	reg.GaugeFunc(`lsm_level_files{level="1"}`, "files per level", func() float64 { return 7 })
	h := reg.Histogram("lsm_get_nanos", "get latency")
	for i := 0; i < 100; i++ {
		h.Observe(1000) // single bucket [512,1023]
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP adcache_ops_total operations served`,
		`# TYPE adcache_ops_total counter`,
		`adcache_ops_total 42`,
		`# HELP adcache_range_ratio range cache share`,
		`# TYPE adcache_range_ratio gauge`,
		`adcache_range_ratio 0.375`,
		`# HELP lsm_get_nanos get latency`,
		`# TYPE lsm_get_nanos summary`,
		`lsm_get_nanos{quantile="0.5"} 756`,
		`lsm_get_nanos{quantile="0.9"} 951.2`,
		`lsm_get_nanos{quantile="0.99"} 995.12`,
		`lsm_get_nanos_sum 100000`,
		`lsm_get_nanos_count 100`,
		`lsm_get_nanos_max 1000`,
		`# HELP lsm_level_files files per level`,
		`# TYPE lsm_level_files gauge`,
		`lsm_level_files{level="0"} 3`,
		`lsm_level_files{level="1"} 7`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestMetricsSnapshotMap(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Add(5)
	reg.Gauge("b", "").Set(-3)
	reg.Histogram("c_nanos", "").Observe(100)
	snap := reg.Snapshot()
	if snap["a_total"].(int64) != 5 {
		t.Errorf("a_total = %v", snap["a_total"])
	}
	if snap["b"].(int64) != -3 {
		t.Errorf("b = %v", snap["b"])
	}
	hs, ok := snap["c_nanos"].(HistogramSummary)
	if !ok || hs.Count != 1 || hs.Max != 100 {
		t.Errorf("c_nanos = %#v", snap["c_nanos"])
	}
}
