package metrics

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteHistogramTable prints a human-readable summary table of every
// histogram in the registry — the adbench/lsmtool view of the latency
// distributions. Histograms whose base name ends in `_nanos` are formatted
// as durations; everything else as plain magnitudes.
func (r *Registry) WriteHistogramTable(w io.Writer) {
	const header = "%-28s %10s %10s %10s %10s %10s %10s\n"
	fmt.Fprintf(w, header, "histogram", "count", "mean", "p50", "p90", "p99", "max")
	n := 0
	r.EachHistogram(func(name string, s HistogramSnapshot) {
		n++
		format := formatMagnitude
		if strings.HasSuffix(baseName(name), "_nanos") {
			format = formatNanos
		}
		fmt.Fprintf(w, header, name,
			fmt.Sprintf("%d", s.Count),
			format(s.Mean()),
			format(s.Quantile(0.50)),
			format(s.Quantile(0.90)),
			format(s.Quantile(0.99)),
			format(float64(s.Max)))
	})
	if n == 0 {
		fmt.Fprintln(w, "(no histograms registered)")
	}
}

// formatNanos renders a nanosecond magnitude as a rounded duration.
func formatNanos(v float64) string {
	d := time.Duration(v)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// formatMagnitude renders a dimensionless value compactly.
func formatMagnitude(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
