// Package server exposes a DB over the versioned /v1 HTTP API — a
// dependency-free network front end that also speaks the cluster
// protocol: shard-ownership enforcement, the shard-map control plane, and
// the migration endpoints the shard manager drives (cmd/adcached serves
// it; client is the supported Go consumer; API.md documents the wire
// format).
//
// Data plane:
//
//	GET    /v1/kv/{key}               → 200 value | 404
//	PUT    /v1/kv/{key}  body=value   → 204
//	DELETE /v1/kv/{key}               → 204
//	GET    /v1/scan?start=K&n=16      → 200 JSON [{"key":...,"value":...}]
//	GET    /v1/scan?start=K&end=L     → bounded variant
//	POST   /v1/batch     JSON ops     → 204 (atomic on this node)
//
// Control plane and observability:
//
//	GET    /v1/stats                  → 200 JSON adcache.MetricsSnapshot
//	GET    /v1/shardmap               → 200 JSON cluster.ShardMap
//	POST   /v1/shardmap               → 204 (accept newer epoch)
//	GET    /v1/shardstats             → 200 JSON api.ShardStats
//	GET    /v1/migrate?shard=S        → 200 JSON [api.MigrateEntry] (internal)
//	POST   /v1/migrate?shard=S        → 204 bulk load (internal)
//	DELETE /v1/migrate?shard=S        → 204 purge unowned shard (internal)
//	GET    /metrics                   → 200 Prometheus text exposition
//	GET    /debug/vars                → 200 expvar JSON + registry snapshot
//
// The pre-/v1 routes (/kv/, /scan, /batch, /stats) remain as deprecated
// aliases for one release: they delegate to their /v1 equivalents and
// mark themselves with a Deprecation header.
//
// Every non-2xx response carries the typed JSON error envelope
// {"code","message","epoch"} (api.Envelope). On a cluster-configured node
// every keyed response also carries X-Adcache-Node/-Epoch/-Shard routing
// headers, and keys outside the node's owned shards are rejected with 421
// WRONG_SHARD — the retryable signal that tells a client its shard map is
// stale.
//
// Keys and values are raw bytes in paths/bodies (keys URL-escaped); scan
// and stats return JSON. Every request is measured into the DB's metrics
// registry (http_requests_total and http_request_nanos by route), and
// keyed operations additionally feed per-shard read/write histograms
// (http_shard_read_nanos{shard="3"}, …) — the series the shard manager
// polls through /v1/shardstats.
package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"adcache"
	"adcache/internal/api"
	"adcache/internal/cluster"
	"adcache/internal/metrics"
)

// MapApplier is the optional write half of a cluster.MapSource: a source
// that can accept newer map epochs (cluster.NodeView implements it).
// POST /v1/shardmap requires it.
type MapApplier interface {
	Apply(*cluster.ShardMap) error
}

// config is the resolved option set for one server.
type config struct {
	readOnly      bool
	maxBodyBytes  int64
	nodeID        string
	src           cluster.MapSource
	maxInFlight   int
	serviceTime   time.Duration
	internalToken string
}

// Option configures New.
type Option func(*config)

// WithReadOnly rejects every mutating data request (PUT/POST/DELETE on
// /v1/kv, POST /v1/batch, migration writes) with 403 READ_ONLY, leaving
// reads and observability up — the mode for exposing a store to
// dashboards without write access.
func WithReadOnly() Option { return func(c *config) { c.readOnly = true } }

// WithMaxBodyBytes caps request bodies on /v1/kv, /v1/batch and
// /v1/migrate (default 64 MiB).
func WithMaxBodyBytes(n int64) Option { return func(c *config) { c.maxBodyBytes = n } }

// WithNodeID sets this node's cluster identity (reported in the
// X-Adcache-Node header and /v1/shardstats).
func WithNodeID(id string) Option { return func(c *config) { c.nodeID = id } }

// WithMapSource supplies the shard map the server enforces ownership
// against. If the source also implements MapApplier, POST /v1/shardmap
// accepts newer epochs.
func WithMapSource(src cluster.MapSource) Option { return func(c *config) { c.src = src } }

// WithCluster wires a NodeView as both identity and map source — the
// standard cluster configuration.
func WithCluster(view *cluster.NodeView) Option {
	return func(c *config) {
		c.nodeID = view.ID()
		c.src = view
	}
}

// WithInternalToken sets the shared secret authenticating shard-manager
// traffic: requests whose HeaderInternal value matches it may use the
// /v1/migrate endpoints and bypass ownership checks. Without a token the
// migration surface rejects every request — there is no well-known
// default value.
func WithInternalToken(tok string) Option { return func(c *config) { c.internalToken = tok } }

// WithConcurrencyLimit bounds in-flight data-plane requests; excess
// requests queue. This models a node's finite serving capacity: a node
// taking a disproportionate share of fleet traffic exhibits queueing
// delay, which is exactly the tail-latency signal the shard manager
// rebalances away. Control-plane and observability routes bypass the
// limit so management never queues behind data. 0 means unlimited.
func WithConcurrencyLimit(n int) Option { return func(c *config) { c.maxInFlight = n } }

// WithServiceTime makes every data-plane request hold its concurrency
// slot for at least d. On loopback, real handler time is microseconds —
// far too small for a concurrency limit to ever queue — so load
// generators (adbench -cluster) use this to model nodes backed by slower
// media, where finite capacity is the true bottleneck and overload shows
// up as queueing delay. Production servers leave it zero.
func WithServiceTime(d time.Duration) Option { return func(c *config) { c.serviceTime = d } }

// New returns an http.Handler serving db with the given options. It is
// the single constructor; Handler and NewHandler are deprecated wrappers.
func New(db *adcache.DB, opts ...Option) http.Handler {
	cfg := config{maxBodyBytes: 64 << 20}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxBodyBytes <= 0 {
		cfg.maxBodyBytes = 64 << 20
	}
	nShards := 1
	if cfg.src != nil {
		if m := cfg.src.Current(); m != nil {
			nShards = m.Shards
		}
	}
	s := &server{db: db, cfg: cfg, reg: db.Registry(), nShards: nShards}
	s.readHist = make([]*metrics.Histogram, nShards)
	s.writeHist = make([]*metrics.Histogram, nShards)
	for i := 0; i < nShards; i++ {
		s.readHist[i] = s.reg.Histogram(fmt.Sprintf("http_shard_read_nanos{shard=%q}", strconv.Itoa(i)),
			"Keyed read latency by hash slot.")
		s.writeHist[i] = s.reg.Histogram(fmt.Sprintf("http_shard_write_nanos{shard=%q}", strconv.Itoa(i)),
			"Keyed write latency by hash slot.")
	}
	if cfg.maxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.maxInFlight)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/kv/", s.handleKV)
	mux.HandleFunc("/v1/scan", s.handleScan)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/shardmap", s.handleShardMap)
	mux.HandleFunc("/v1/shardstats", s.handleShardStats)
	mux.HandleFunc("/v1/migrate", s.handleMigrate)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleDebugVars)
	// Deprecated pre-/v1 aliases: delegate to the /v1 handler under the
	// rewritten path so behavior (and instrumentation) is identical.
	mux.HandleFunc("/kv/", s.legacy("/kv/", "/v1/kv/", s.handleKV))
	mux.HandleFunc("/scan", s.legacy("/scan", "/v1/scan", s.handleScan))
	mux.HandleFunc("/batch", s.legacy("/batch", "/v1/batch", s.handleBatch))
	mux.HandleFunc("/stats", s.legacy("/stats", "/v1/stats", s.handleStats))
	return s.instrument(mux)
}

// Options configures a Handler.
//
// Deprecated: use New with functional options.
type Options struct {
	// ReadOnly rejects every mutating request.
	ReadOnly bool
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
}

// Handler returns an http.Handler serving db with defaults.
//
// Deprecated: use New(db).
func Handler(db *adcache.DB) http.Handler { return New(db) }

// NewHandler returns an http.Handler serving db under opts.
//
// Deprecated: use New(db, WithReadOnly(), WithMaxBodyBytes(n)).
func NewHandler(db *adcache.DB, opts Options) http.Handler {
	var o []Option
	if opts.ReadOnly {
		o = append(o, WithReadOnly())
	}
	if opts.MaxBodyBytes > 0 {
		o = append(o, WithMaxBodyBytes(opts.MaxBodyBytes))
	}
	return New(db, o...)
}

type server struct {
	db      *adcache.DB
	cfg     config
	reg     *metrics.Registry
	nShards int
	// Per-hash-slot latency histograms, the shard manager's signal.
	readHist  []*metrics.Histogram
	writeHist []*metrics.Histogram
	// sem bounds in-flight data-plane requests when non-nil.
	sem chan struct{}
	// flight orders mutations against shard-map changes: every data-plane
	// mutation holds the read side from its ownership check through its
	// engine write, and installing a new map (the shard manager's fence)
	// takes the write side. A write therefore either commits entirely
	// before the fence is acknowledged — and is included in the
	// migration's copy — or starts after it and sees the new map's
	// ownership, answering WRONG_SHARD instead of acking a doomed write.
	flight sync.RWMutex
}

// legacy rewrites a deprecated route onto its /v1 handler.
func (s *server) legacy(old, v1 string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r2 := r.Clone(r.Context())
		r2.URL.Path = v1 + strings.TrimPrefix(r.URL.Path, old)
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", r2.URL.Path))
		h(w, r2)
	}
}

// route classifies a request path into a bounded label set, so the metric
// cardinality cannot grow with the key space.
func route(path string) string {
	path = strings.TrimPrefix(path, "/v1")
	switch {
	case strings.HasPrefix(path, "/kv/"):
		return "kv"
	case path == "/scan":
		return "scan"
	case path == "/batch":
		return "batch"
	case path == "/stats":
		return "stats"
	case path == "/shardmap":
		return "shardmap"
	case path == "/shardstats":
		return "shardstats"
	case path == "/migrate":
		return "migrate"
	case path == "/metrics":
		return "metrics"
	case strings.HasPrefix(path, "/debug/"):
		return "debug"
	default:
		return "other"
	}
}

// dataRoute reports whether rt is subject to the concurrency limit.
func dataRoute(rt string) bool { return rt == "kv" || rt == "scan" || rt == "batch" }

// ctxKeyStart carries a data request's arrival time — taken before the
// concurrency-limit wait — into handlers, so the per-shard histograms
// include queueing delay. An overloaded node's slots then read hot to the
// shard manager even when pure handler time is tiny.
type ctxKeyStart struct{}

// reqStart returns the request's arrival time when instrument recorded
// one, else now.
func reqStart(r *http.Request) time.Time {
	if t, ok := r.Context().Value(ctxKeyStart{}).(time.Time); ok {
		return t
	}
	return time.Now()
}

// instrument wraps next with per-route request counting, latency
// histograms, and the data-plane concurrency limit. Metrics are
// get-or-create, so the first request on each route registers its series.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := route(r.URL.Path)
		h := s.reg.Histogram(fmt.Sprintf("http_request_nanos{route=%q}", rt),
			"HTTP request latency by route.")
		s.reg.Counter(fmt.Sprintf("http_requests_total{route=%q}", rt),
			"HTTP requests served by route.").Inc()
		start := time.Now()
		if dataRoute(rt) {
			r = r.WithContext(context.WithValue(r.Context(), ctxKeyStart{}, start))
			if s.sem != nil {
				s.sem <- struct{}{}
				defer func() { <-s.sem }()
			}
			if s.cfg.serviceTime > 0 {
				time.Sleep(s.cfg.serviceTime)
			}
		}
		next.ServeHTTP(w, r)
		h.ObserveSince(start)
	})
}

// epoch returns the node's current map epoch (0 without a cluster).
func (s *server) epoch() uint64 {
	if s.cfg.src == nil {
		return 0
	}
	if m := s.cfg.src.Current(); m != nil {
		return m.Epoch
	}
	return 0
}

// writeErr emits the typed error envelope.
func (s *server) writeErr(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(api.Envelope{Code: code, Message: msg, Epoch: s.epoch()})
}

// deny reports (and handles) a mutating request arriving in read-only mode.
func (s *server) deny(w http.ResponseWriter) bool {
	if !s.cfg.readOnly {
		return false
	}
	s.writeErr(w, http.StatusForbidden, api.CodeReadOnly, "node is read-only")
	return true
}

// internalOK reports whether r authenticates as shard-manager traffic:
// the node must have a migration token configured and the request's
// HeaderInternal value must match it.
func (s *server) internalOK(r *http.Request) bool {
	tok := s.cfg.internalToken
	if tok == "" {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(r.Header.Get(api.HeaderInternal)), []byte(tok)) == 1
}

// shardHeaders stamps the routing headers for key on w and returns the
// key's slot under the current map (slot 0 without a cluster).
func (s *server) shardHeaders(w http.ResponseWriter, key []byte) int {
	if s.cfg.src == nil {
		return 0
	}
	m := s.cfg.src.Current()
	if m == nil {
		return 0
	}
	shard := m.Shard(key)
	w.Header().Set(api.HeaderEpoch, strconv.FormatUint(m.Epoch, 10))
	w.Header().Set(api.HeaderShard, strconv.Itoa(shard))
	if s.cfg.nodeID != "" {
		w.Header().Set(api.HeaderNode, s.cfg.nodeID)
	}
	return shard
}

// checkOwned enforces shard ownership of key: when this node is cluster-
// configured and does not own the key's slot (and the request is not
// internal migration traffic), it answers 421 WRONG_SHARD carrying the
// node's current epoch and reports false.
func (s *server) checkOwned(w http.ResponseWriter, r *http.Request, key []byte, shard int) bool {
	if s.cfg.src == nil || s.internalOK(r) {
		return true
	}
	m := s.cfg.src.Current()
	if m == nil {
		return true
	}
	if owner := m.Owner[shard]; owner != s.cfg.nodeID {
		s.writeErr(w, http.StatusMisdirectedRequest, api.CodeWrongShard,
			fmt.Sprintf("shard %d owned by node %q", shard, owner))
		return false
	}
	return true
}

// observeShard records a keyed op's latency into the slot's read or
// write histogram (guarding against maps with more slots than this
// server was built with — the slot count is fixed per cluster).
func (s *server) observeShard(shard int, write bool, start time.Time) {
	if shard < 0 || shard >= s.nShards {
		return
	}
	if write {
		s.writeHist[shard].ObserveSince(start)
	} else {
		s.readHist[shard].ObserveSince(start)
	}
}

// readBody drains a size-capped request body, classifying over-cap as
// 413 TOO_LARGE and transport errors as 400 BAD_BODY.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeErr(w, http.StatusRequestEntityTooLarge, api.CodeTooLarge,
				fmt.Sprintf("body exceeds %d bytes", s.cfg.maxBodyBytes))
		} else {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadBody, err.Error())
		}
		return nil, false
	}
	return body, true
}

func (s *server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/kv/")
	if key == "" {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadKey, "empty key")
		return
	}
	kb := []byte(key)
	shard := s.shardHeaders(w, kb)
	start := reqStart(r)
	switch r.Method {
	case http.MethodGet:
		if !s.checkOwned(w, r, kb, shard) {
			return
		}
		v, ok, err := s.db.Get(kb)
		s.observeShard(shard, false, start)
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		if !ok {
			s.writeErr(w, http.StatusNotFound, api.CodeNotFound, "key not found")
			return
		}
		w.Write(v)
	case http.MethodPut, http.MethodPost:
		if s.deny(w) {
			return
		}
		// Body first, lock second: a slow request body must not hold the
		// flight lock open (it would let one slow client widen the fence
		// window arbitrarily). The ownership check and the engine write
		// share one critical section so a concurrent fence cannot slip
		// between them and purge an acked write.
		value, ok := s.readBody(w, r)
		if !ok {
			return
		}
		s.flight.RLock()
		defer s.flight.RUnlock()
		if !s.checkOwned(w, r, kb, shard) {
			return
		}
		if err := s.db.Put(kb, value); err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		s.observeShard(shard, true, start)
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if s.deny(w) {
			return
		}
		s.flight.RLock()
		defer s.flight.RUnlock()
		if !s.checkOwned(w, r, kb, shard) {
			return
		}
		if err := s.db.Delete(kb); err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		s.observeShard(shard, true, start)
		w.WriteHeader(http.StatusNoContent)
	default:
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/kv/")
	}
}

// owned reports whether this node owns key (true without a cluster).
func (s *server) owned(key []byte) bool {
	if s.cfg.src == nil {
		return true
	}
	m := s.cfg.src.Current()
	if m == nil {
		return true
	}
	return m.OwnerOf(key) == s.cfg.nodeID
}

func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/scan")
		return
	}
	q := r.URL.Query()
	start := q.Get("start")
	n := 16
	if raw := q.Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 || parsed > 10_000 {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadLimit,
				fmt.Sprintf("n must be an integer in [1,10000], got %q", raw))
			return
		}
		n = parsed
	}
	end := q.Get("end")
	if end != "" && end <= start {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadLimit,
			fmt.Sprintf("end %q not after start %q", end, start))
		return
	}
	t0 := reqStart(r)
	out, err := s.scanOwned([]byte(start), []byte(end), n)
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	if s.cfg.src != nil {
		if m := s.cfg.src.Current(); m != nil {
			w.Header().Set(api.HeaderEpoch, strconv.FormatUint(m.Epoch, 10))
		}
		if s.cfg.nodeID != "" {
			w.Header().Set(api.HeaderNode, s.cfg.nodeID)
		}
	}
	// A scan touches many slots; charge it to the slot of its first
	// result (or the start key) — good enough for load attribution.
	slot := 0
	if s.nShards > 1 {
		if len(out) > 0 {
			slot = cluster.ShardOf([]byte(out[0].Key), s.nShards)
		} else {
			slot = cluster.ShardOf([]byte(start), s.nShards)
		}
	}
	s.observeShard(slot, false, t0)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// scanOwned iterates from start, skipping keys this node does not own
// under the current map (a moved-away slot's leftover data must be
// invisible), until n owned entries or the end bound.
func (s *server) scanOwned(start, end []byte, n int) ([]api.ScanEntry, error) {
	it, err := s.db.NewIter()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := make([]api.ScanEntry, 0, n)
	ok := it.SeekGE(start)
	for ; ok && len(out) < n; ok = it.Next() {
		k := it.Key()
		if len(end) > 0 && string(k) >= string(end) {
			break
		}
		if !s.owned(k) {
			continue
		}
		out = append(out, api.ScanEntry{Key: string(k), Value: string(it.Value())})
	}
	return out, it.Err()
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/batch")
		return
	}
	if s.deny(w) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var ops []api.BatchOp
	if err := json.Unmarshal(body, &ops); err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadBody, err.Error())
		return
	}
	start := reqStart(r)
	// Ownership checks and the batch apply share one flight critical
	// section (body already read above): a concurrent fence either waits
	// for this whole batch to commit or forces it onto the new map.
	s.flight.RLock()
	defer s.flight.RUnlock()
	b := s.db.NewBatch()
	touched := map[int]bool{}
	for i, op := range ops {
		if op.Key == "" {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadKey, fmt.Sprintf("op %d: empty key", i))
			return
		}
		kb := []byte(op.Key)
		shard := 0
		if s.cfg.src != nil {
			if m := s.cfg.src.Current(); m != nil {
				shard = m.Shard(kb)
				w.Header().Set(api.HeaderEpoch, strconv.FormatUint(m.Epoch, 10))
			}
		}
		if !s.checkOwned(w, r, kb, shard) {
			return
		}
		touched[shard] = true
		switch op.Op {
		case "put":
			b.Put(kb, []byte(op.Value))
		case "delete":
			b.Delete(kb)
		default:
			s.writeErr(w, http.StatusBadRequest, api.CodeBadOp,
				fmt.Sprintf("op %d: unknown %q (want put|delete)", i, op.Op))
			return
		}
	}
	if err := s.db.Apply(b); err != nil {
		s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	for shard := range touched {
		s.observeShard(shard, true, start)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStats serves the DB's unified snapshot verbatim — one struct, one
// JSON shape, no per-strategy cases.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.db.Metrics())
}

// handleShardMap serves the node's current map and accepts newer epochs
// from the shard manager.
func (s *server) handleShardMap(w http.ResponseWriter, r *http.Request) {
	if s.cfg.src == nil {
		s.writeErr(w, http.StatusNotFound, api.CodeNotFound, "node is not cluster-configured")
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.cfg.src.Current())
	case http.MethodPost:
		applier, ok := s.cfg.src.(MapApplier)
		if !ok {
			s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
				"node's map source is read-only")
			return
		}
		body, ok := s.readBody(w, r)
		if !ok {
			return
		}
		var m cluster.ShardMap
		if err := json.Unmarshal(body, &m); err != nil {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadMap, err.Error())
			return
		}
		// Installing a map is the migration fence: take the flight write
		// lock so every in-flight mutation that passed its ownership
		// check under the old map commits before the new map (and the
		// 204 that releases the shard manager to start copying) lands.
		s.flight.Lock()
		err := applier.Apply(&m)
		s.flight.Unlock()
		if err != nil {
			if m.Epoch < s.epoch() {
				s.writeErr(w, http.StatusConflict, api.CodeStaleEpoch, err.Error())
			} else {
				s.writeErr(w, http.StatusBadRequest, api.CodeBadMap, err.Error())
			}
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/shardmap")
	}
}

// handleShardStats serves the per-slot cumulative latency histograms the
// shard manager polls.
func (s *server) handleShardStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/shardstats")
		return
	}
	st := api.ShardStats{Node: s.cfg.nodeID, Epoch: s.epoch(), Shards: make([]api.ShardStat, s.nShards)}
	for i := 0; i < s.nShards; i++ {
		st.Shards[i] = api.ShardStat{
			Shard:  i,
			Reads:  s.readHist[i].Snapshot(),
			Writes: s.writeHist[i].Snapshot(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// parseShard extracts and bounds the ?shard= parameter.
func (s *server) parseShard(w http.ResponseWriter, r *http.Request) (int, bool) {
	raw := r.URL.Query().Get("shard")
	shard, err := strconv.Atoi(raw)
	if err != nil || shard < 0 || shard >= s.nShards {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadShard,
			fmt.Sprintf("shard must be an integer in [0,%d), got %q", s.nShards, raw))
		return 0, false
	}
	return shard, true
}

// handleMigrate is the shard manager's bulk-transfer surface: export,
// bulk-load, and purge one hash slot. All verbs require the internal
// header — this is control-plane, not client API.
func (s *server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if !s.internalOK(r) {
		s.writeErr(w, http.StatusForbidden, api.CodeForbidden,
			"migration requires a valid "+api.HeaderInternal+" token")
		return
	}
	shard, ok := s.parseShard(w, r)
	if !ok {
		return
	}
	switch r.Method {
	case http.MethodGet:
		entries, err := s.collectShard(shard)
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(entries)
	case http.MethodPost:
		if s.deny(w) {
			return
		}
		body, ok := s.readBody(w, r)
		if !ok {
			return
		}
		var entries []api.MigrateEntry
		if err := json.Unmarshal(body, &entries); err != nil {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadBody, err.Error())
			return
		}
		b := s.db.NewBatch()
		for _, e := range entries {
			b.Put(e.Key, e.Value)
		}
		if err := s.db.Apply(b); err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if s.deny(w) {
			return
		}
		if s.cfg.src != nil {
			if m := s.cfg.src.Current(); m != nil && m.Owner[shard] == s.cfg.nodeID {
				s.writeErr(w, http.StatusConflict, api.CodeOwnedShard,
					fmt.Sprintf("refusing to purge shard %d: still owned by this node", shard))
				return
			}
		}
		entries, err := s.collectShard(shard)
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		b := s.db.NewBatch()
		for _, e := range entries {
			b.Delete(e.Key)
		}
		if err := s.db.Apply(b); err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/migrate")
	}
}

// collectShard iterates the whole local keyspace collecting entries in
// slot shard. Hash partitioning scatters a slot across the key space, so
// this is a full scan — fine at reproduction scale; a range-partitioned
// map would make it a bounded scan.
func (s *server) collectShard(shard int) ([]api.MigrateEntry, error) {
	it, err := s.db.NewIter()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []api.MigrateEntry
	for ok := it.First(); ok; ok = it.Next() {
		k := it.Key()
		if cluster.ShardOf(k, s.nShards) != shard {
			continue
		}
		out = append(out, api.MigrateEntry{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Err()
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleDebugVars serves the standard expvar payload (cmdline, memstats,
// and anything the process published) with the DB's registry snapshot
// appended under "adcache". The DB registry is merged here rather than
// expvar.Publish'ed because Publish is process-global and panics on
// duplicates — one process may run many DBs.
func (s *server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value.String())
	})
	snap, err := json.Marshal(s.db.Registry().Snapshot())
	if err != nil {
		snap = []byte("{}")
	}
	fmt.Fprintf(w, "%q: %s\n}\n", "adcache", snap)
}
