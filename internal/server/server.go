// Package server exposes a DB over the versioned /v1 HTTP API — a
// dependency-free network front end that also speaks the cluster
// protocol: shard-ownership enforcement, the shard-map control plane, and
// the migration endpoints the shard manager drives (cmd/adcached serves
// it; client is the supported Go consumer; API.md documents the wire
// format).
//
// Data plane:
//
//	GET    /v1/kv/{key}               → 200 value | 404
//	PUT    /v1/kv/{key}  body=value   → 204
//	DELETE /v1/kv/{key}               → 204
//	GET    /v1/scan?start=K&n=16      → 200 JSON [{"key":...,"value":...}]
//	GET    /v1/scan?start=K&end=L     → bounded variant
//	POST   /v1/batch     JSON ops     → 204 (atomic on this node)
//
// Batch bodies and scan responses additionally speak the binary codec
// (internal/api/wire): POST /v1/batch with Content-Type
// application/x-adcache-bin carries a binary batch, and GET /v1/scan with
// that Accept value streams binary entry frames. JSON stays the default;
// scans stream in both formats (chunks are flushed as the iterator
// advances, and a response that ends without its terminator — "]" or the
// binary end frame — was truncated mid-stream).
//
// Control plane and observability:
//
//	GET    /v1/stats                  → 200 JSON adcache.MetricsSnapshot
//	GET    /v1/shardmap               → 200 JSON cluster.ShardMap
//	POST   /v1/shardmap               → 204 (accept newer epoch)
//	GET    /v1/shardstats             → 200 JSON api.ShardStats
//	GET    /v1/migrate?shard=S        → 200 JSON [api.MigrateEntry] (internal)
//	POST   /v1/migrate?shard=S        → 204 bulk load (internal)
//	DELETE /v1/migrate?shard=S        → 204 purge unowned shard (internal)
//	GET    /metrics                   → 200 Prometheus text exposition
//	GET    /debug/vars                → 200 expvar JSON + registry snapshot
//	GET    /debug/pprof/*             → profiling (opt-in via WithPprof)
//
// The pre-/v1 routes (/kv/, /scan, /batch, /stats) remain as deprecated
// aliases for one release: they delegate to their /v1 equivalents and
// mark themselves with a Deprecation header.
//
// Every non-2xx response carries the typed JSON error envelope
// {"code","message","epoch"} (api.Envelope). On a cluster-configured node
// every keyed response also carries X-Adcache-Node/-Epoch/-Shard routing
// headers, and keys outside the node's owned shards are rejected with 421
// WRONG_SHARD — the retryable signal that tells a client its shard map is
// stale.
//
// Keys and values are raw bytes in paths/bodies (keys URL-escaped); scan
// and stats return JSON. Every request is measured into the DB's metrics
// registry (http_requests_total and http_request_nanos by route), and
// keyed operations additionally feed per-shard read/write histograms
// (http_shard_read_nanos{shard="3"}, …) — the series the shard manager
// polls through /v1/shardstats.
//
// With WithWriteCoalescing, concurrent write requests — single-op
// puts/deletes and whole batch bodies — are grouped into one engine
// Apply (one WAL commit, one flight-lock hold) — see coalesce.go for
// the fence-interaction argument.
package server

import (
	"crypto/subtle"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adcache"
	"adcache/internal/api"
	"adcache/internal/api/wire"
	"adcache/internal/cluster"
	"adcache/internal/lsm"
	"adcache/internal/metrics"
)

// MapApplier is the optional write half of a cluster.MapSource: a source
// that can accept newer map epochs (cluster.NodeView implements it).
// POST /v1/shardmap requires it.
type MapApplier interface {
	Apply(*cluster.ShardMap) error
}

// config is the resolved option set for one server.
type config struct {
	readOnly      bool
	maxBodyBytes  int64
	nodeID        string
	src           cluster.MapSource
	maxInFlight   int
	serviceTime   time.Duration
	internalToken string
	pprof         bool
	coalesce      bool
	coalWindow    time.Duration
	coalMaxOps    int
	drain         *DrainState
}

// Option configures New.
type Option func(*config)

// WithReadOnly rejects every mutating data request (PUT/POST/DELETE on
// /v1/kv, POST /v1/batch, migration writes) with 403 READ_ONLY, leaving
// reads and observability up — the mode for exposing a store to
// dashboards without write access.
func WithReadOnly() Option { return func(c *config) { c.readOnly = true } }

// WithMaxBodyBytes caps request bodies on /v1/kv, /v1/batch and
// /v1/migrate (default 64 MiB).
func WithMaxBodyBytes(n int64) Option { return func(c *config) { c.maxBodyBytes = n } }

// WithNodeID sets this node's cluster identity (reported in the
// X-Adcache-Node header and /v1/shardstats).
func WithNodeID(id string) Option { return func(c *config) { c.nodeID = id } }

// WithMapSource supplies the shard map the server enforces ownership
// against. If the source also implements MapApplier, POST /v1/shardmap
// accepts newer epochs.
func WithMapSource(src cluster.MapSource) Option { return func(c *config) { c.src = src } }

// WithCluster wires a NodeView as both identity and map source — the
// standard cluster configuration.
func WithCluster(view *cluster.NodeView) Option {
	return func(c *config) {
		c.nodeID = view.ID()
		c.src = view
	}
}

// WithInternalToken sets the shared secret authenticating shard-manager
// traffic: requests whose HeaderInternal value matches it may use the
// /v1/migrate endpoints and bypass ownership checks. Without a token the
// migration surface rejects every request — there is no well-known
// default value.
func WithInternalToken(tok string) Option { return func(c *config) { c.internalToken = tok } }

// WithConcurrencyLimit bounds in-flight data-plane requests; excess
// requests queue. This models a node's finite serving capacity: a node
// taking a disproportionate share of fleet traffic exhibits queueing
// delay, which is exactly the tail-latency signal the shard manager
// rebalances away. Control-plane and observability routes bypass the
// limit so management never queues behind data. 0 means unlimited.
func WithConcurrencyLimit(n int) Option { return func(c *config) { c.maxInFlight = n } }

// WithServiceTime makes every data-plane request hold its concurrency
// slot for at least d. On loopback, real handler time is microseconds —
// far too small for a concurrency limit to ever queue — so load
// generators (adbench -cluster) use this to model nodes backed by slower
// media, where finite capacity is the true bottleneck and overload shows
// up as queueing delay. Production servers leave it zero.
func WithServiceTime(d time.Duration) Option { return func(c *config) { c.serviceTime = d } }

// WithPprof mounts the standard net/http/pprof endpoints under
// /debug/pprof/. Opt-in: profiling handlers can expose stacks and should
// not be on by default on a data port.
func WithPprof() Option { return func(c *config) { c.pprof = true } }

// WithWriteCoalescing groups concurrent write requests — single-op
// puts/deletes and whole /v1/batch bodies — into one engine Apply under
// one flight-lock hold, amortizing WAL fsync and lock costs across
// connections (the cross-request analogue of the engine's write-group
// commit). A group closes after window has passed since its first
// request or once maxOps total ops are staged, whichever comes first;
// window 0 groups only what is already queued (no added latency),
// maxOps <= 0 defaults to 128. Off by default: writes apply directly. A
// request coalesced into a group is acked only after the group's commit
// returns, and a batch's ops all enter the same group apply (atomicity
// preserved), so durability and fence semantics are unchanged — see
// coalesce.go.
func WithWriteCoalescing(window time.Duration, maxOps int) Option {
	return func(c *config) {
		c.coalesce = true
		c.coalWindow = window
		c.coalMaxOps = maxOps
	}
}

// New returns an http.Handler serving db with the given options. It is
// the single constructor; Handler and NewHandler are deprecated wrappers.
func New(db *adcache.DB, opts ...Option) http.Handler {
	cfg := config{maxBodyBytes: 64 << 20}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxBodyBytes <= 0 {
		cfg.maxBodyBytes = 64 << 20
	}
	nShards := 1
	if cfg.src != nil {
		if m := cfg.src.Current(); m != nil {
			nShards = m.Shards
		}
	}
	s := &server{db: db, cfg: cfg, reg: db.Registry(), nShards: nShards}
	s.readHist = make([]*metrics.Histogram, nShards)
	s.writeHist = make([]*metrics.Histogram, nShards)
	s.shardStrs = make([]string, nShards)
	for i := 0; i < nShards; i++ {
		s.shardStrs[i] = strconv.Itoa(i)
		s.readHist[i] = s.reg.Histogram(fmt.Sprintf("http_shard_read_nanos{shard=%q}", s.shardStrs[i]),
			"Keyed read latency by hash slot.")
		s.writeHist[i] = s.reg.Histogram(fmt.Sprintf("http_shard_write_nanos{shard=%q}", s.shardStrs[i]),
			"Keyed write latency by hash slot.")
	}
	// Per-route series are precomputed into enum-indexed arrays so the
	// per-request cost is two array loads instead of two fmt.Sprintf
	// registry lookups.
	for rt := routeID(0); rt < nRoutes; rt++ {
		s.reqHist[rt] = s.reg.Histogram(fmt.Sprintf("http_request_nanos{route=%q}", routeNames[rt]),
			"HTTP request latency by route.")
		s.reqCount[rt] = s.reg.Counter(fmt.Sprintf("http_requests_total{route=%q}", routeNames[rt]),
			"HTTP requests served by route.")
	}
	if cfg.maxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.maxInFlight)
	}
	if cfg.coalesce && !cfg.readOnly {
		s.startCoalescer()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/kv/", s.handleKV)
	mux.HandleFunc("/v1/scan", s.handleScan)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/shardmap", s.handleShardMap)
	mux.HandleFunc("/v1/shardstats", s.handleShardStats)
	mux.HandleFunc("/v1/migrate", s.handleMigrate)
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleDebugVars)
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	// Deprecated pre-/v1 aliases: delegate to the /v1 handler under the
	// rewritten path so behavior (and instrumentation) is identical.
	mux.HandleFunc("/kv/", s.legacy("/kv/", "/v1/kv/", s.handleKV))
	mux.HandleFunc("/scan", s.legacy("/scan", "/v1/scan", s.handleScan))
	mux.HandleFunc("/batch", s.legacy("/batch", "/v1/batch", s.handleBatch))
	mux.HandleFunc("/stats", s.legacy("/stats", "/v1/stats", s.handleStats))
	return s.instrument(mux)
}

// Options configures a Handler.
//
// Deprecated: use New with functional options.
type Options struct {
	// ReadOnly rejects every mutating request.
	ReadOnly bool
	// MaxBodyBytes caps request bodies (default 64 MiB).
	MaxBodyBytes int64
}

// Handler returns an http.Handler serving db with defaults.
//
// Deprecated: use New(db).
func Handler(db *adcache.DB) http.Handler { return New(db) }

// NewHandler returns an http.Handler serving db under opts.
//
// Deprecated: use New(db, WithReadOnly(), WithMaxBodyBytes(n)).
func NewHandler(db *adcache.DB, opts Options) http.Handler {
	var o []Option
	if opts.ReadOnly {
		o = append(o, WithReadOnly())
	}
	if opts.MaxBodyBytes > 0 {
		o = append(o, WithMaxBodyBytes(opts.MaxBodyBytes))
	}
	return New(db, o...)
}

// epochStr caches the decimal form of the current map epoch so routing
// headers do not re-format it on every request.
type epochStr struct {
	e uint64
	s string
}

type server struct {
	db      *adcache.DB
	cfg     config
	reg     *metrics.Registry
	nShards int
	// Per-hash-slot latency histograms, the shard manager's signal.
	readHist  []*metrics.Histogram
	writeHist []*metrics.Histogram
	// shardStrs precomputes slot labels for routing headers.
	shardStrs []string
	// Enum-indexed per-route request metrics (see routeID).
	reqHist  [nRoutes]*metrics.Histogram
	reqCount [nRoutes]*metrics.Counter
	// epochCache holds the last-formatted epoch header value.
	epochCache atomic.Pointer[epochStr]
	// sem bounds in-flight data-plane requests when non-nil.
	sem chan struct{}
	// flight orders mutations against shard-map changes: every data-plane
	// mutation holds the read side from its ownership check through its
	// engine write, and installing a new map (the shard manager's fence)
	// takes the write side. A write therefore either commits entirely
	// before the fence is acknowledged — and is included in the
	// migration's copy — or starts after it and sees the new map's
	// ownership, answering WRONG_SHARD instead of acking a doomed write.
	flight sync.RWMutex
	// coal groups concurrent single-op writes when WithWriteCoalescing is
	// on (nil otherwise); see coalesce.go.
	coal       *coalescer
	coalGroups *metrics.Counter
	coalOps    *metrics.Counter
	coalSize   *metrics.Histogram
}

// legacy rewrites a deprecated route onto its /v1 handler.
func (s *server) legacy(old, v1 string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r2 := r.Clone(r.Context())
		r2.URL.Path = v1 + strings.TrimPrefix(r.URL.Path, old)
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", r2.URL.Path))
		h(w, r2)
	}
}

// routeID classifies a request path into a bounded label set, so the
// metric cardinality cannot grow with the key space. The enum indexes the
// server's precomputed per-route metric arrays.
type routeID int

const (
	routeKV routeID = iota
	routeScan
	routeBatch
	routeStats
	routeShardMap
	routeShardStats
	routeMigrate
	routeHealth
	routeMetrics
	routeDebug
	routeOther
	nRoutes
)

var routeNames = [nRoutes]string{
	"kv", "scan", "batch", "stats", "shardmap", "shardstats", "migrate", "health", "metrics", "debug", "other",
}

func routeOf(path string) routeID {
	path = strings.TrimPrefix(path, "/v1")
	switch {
	case strings.HasPrefix(path, "/kv/"):
		return routeKV
	case path == "/scan":
		return routeScan
	case path == "/batch":
		return routeBatch
	case path == "/stats":
		return routeStats
	case path == "/shardmap":
		return routeShardMap
	case path == "/shardstats":
		return routeShardStats
	case path == "/migrate":
		return routeMigrate
	case path == "/health":
		return routeHealth
	case path == "/metrics":
		return routeMetrics
	case strings.HasPrefix(path, "/debug/"):
		return routeDebug
	default:
		return routeOther
	}
}

// dataRoute reports whether rt is subject to the concurrency limit.
func dataRoute(rt routeID) bool { return rt == routeKV || rt == routeScan || rt == routeBatch }

// instrument wraps next with per-route request counting, latency
// histograms, the data-plane concurrency limit, and the pooled
// timedWriter carrying the request's arrival time (taken before the
// concurrency-limit wait, so per-shard histograms include queueing delay
// — an overloaded node's slots then read hot to the shard manager even
// when pure handler time is tiny) and scratch buffers.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := routeOf(r.URL.Path)
		s.reqCount[rt].Inc()
		start := time.Now()
		if dataRoute(rt) {
			if s.sem != nil {
				s.sem <- struct{}{}
				defer func() { <-s.sem }()
			}
			if s.cfg.serviceTime > 0 {
				time.Sleep(s.cfg.serviceTime)
			}
		}
		tw := twPool.Get().(*timedWriter)
		tw.ResponseWriter, tw.start = w, start
		next.ServeHTTP(tw, r)
		tw.ResponseWriter = nil
		if cap(tw.body) > keepScratchBytes {
			tw.body = nil
		}
		if cap(tw.out) > keepScratchBytes {
			tw.out = nil
		}
		twPool.Put(tw)
		s.reqHist[rt].ObserveSince(start)
	})
}

// epoch returns the node's current map epoch (0 without a cluster).
func (s *server) epoch() uint64 {
	if s.cfg.src == nil {
		return 0
	}
	if m := s.cfg.src.Current(); m != nil {
		return m.Epoch
	}
	return 0
}

// epochString formats e once per epoch change and serves it from cache.
func (s *server) epochString(e uint64) string {
	if c := s.epochCache.Load(); c != nil && c.e == e {
		return c.s
	}
	str := strconv.FormatUint(e, 10)
	s.epochCache.Store(&epochStr{e: e, s: str})
	return str
}

// shardStr returns the cached slot label.
func (s *server) shardStr(shard int) string {
	if shard >= 0 && shard < len(s.shardStrs) {
		return s.shardStrs[shard]
	}
	return strconv.Itoa(shard)
}

// writeErr emits the typed error envelope (hand-encoded into the
// request's scratch buffer; shape identical to json.Marshal of
// api.Envelope, whose epoch field is omitempty).
func (s *server) writeErr(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	tw, buf := scratch(w)
	buf = append(buf, `{"code":"`...)
	buf = append(buf, code...)
	buf = append(buf, `","message":`...)
	buf = appendJSONString(buf, msg)
	if e := s.epoch(); e != 0 {
		buf = append(buf, `,"epoch":`...)
		buf = strconv.AppendUint(buf, e, 10)
	}
	buf = append(buf, '}', '\n')
	w.Write(buf)
	if tw != nil {
		tw.out = buf
	}
}

// deny reports (and handles) a mutating request arriving in read-only mode.
func (s *server) deny(w http.ResponseWriter) bool {
	if !s.cfg.readOnly {
		return false
	}
	s.writeErr(w, http.StatusForbidden, api.CodeReadOnly, "node is read-only")
	return true
}

// internalOK reports whether r authenticates as shard-manager traffic:
// the node must have a migration token configured and the request's
// HeaderInternal value must match it.
func (s *server) internalOK(r *http.Request) bool {
	tok := s.cfg.internalToken
	if tok == "" {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(r.Header.Get(api.HeaderInternal)), []byte(tok)) == 1
}

// shardHeaders stamps the routing headers for key on w and returns the
// key's slot under the current map (slot 0 without a cluster).
func (s *server) shardHeaders(w http.ResponseWriter, key []byte) int {
	if s.cfg.src == nil {
		return 0
	}
	m := s.cfg.src.Current()
	if m == nil {
		return 0
	}
	shard := m.Shard(key)
	h := w.Header()
	h.Set(api.HeaderEpoch, s.epochString(m.Epoch))
	h.Set(api.HeaderShard, s.shardStr(shard))
	if s.cfg.nodeID != "" {
		h.Set(api.HeaderNode, s.cfg.nodeID)
	}
	return shard
}

// checkOwned enforces shard ownership of key: when this node is cluster-
// configured and does not own the key's slot (and the request is not
// internal migration traffic), it answers 421 WRONG_SHARD carrying the
// node's current epoch and reports false.
func (s *server) checkOwned(w http.ResponseWriter, r *http.Request, key []byte, shard int) bool {
	if s.cfg.src == nil || s.internalOK(r) {
		return true
	}
	m := s.cfg.src.Current()
	if m == nil {
		return true
	}
	if owner := m.Owner[shard]; owner != s.cfg.nodeID {
		s.writeErr(w, http.StatusMisdirectedRequest, api.CodeWrongShard,
			fmt.Sprintf("shard %d owned by node %q", shard, owner))
		return false
	}
	return true
}

// observeShard records a keyed op's latency into the slot's read or
// write histogram (guarding against maps with more slots than this
// server was built with — the slot count is fixed per cluster).
func (s *server) observeShard(shard int, write bool, start time.Time) {
	if shard < 0 || shard >= s.nShards {
		return
	}
	if write {
		s.writeHist[shard].ObserveSince(start)
	} else {
		s.readHist[shard].ObserveSince(start)
	}
}

// readBody drains a size-capped request body into the request's pooled
// scratch buffer, classifying over-cap as 413 TOO_LARGE and transport
// errors as 400 BAD_BODY. The returned slice is valid until the handler
// returns (it is recycled with the request).
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	limit := s.cfg.maxBodyBytes
	if r.ContentLength > limit {
		s.writeErr(w, http.StatusRequestEntityTooLarge, api.CodeTooLarge,
			fmt.Sprintf("body exceeds %d bytes", limit))
		return nil, false
	}
	tw, _ := w.(*timedWriter)
	var buf []byte
	if tw != nil {
		buf = tw.body[:0]
	}
	if hint := r.ContentLength; hint > int64(cap(buf)) && hint <= limit {
		buf = make([]byte, 0, hint)
	}
	for {
		if int64(len(buf)) > limit {
			if tw != nil {
				tw.body = buf
			}
			s.writeErr(w, http.StatusRequestEntityTooLarge, api.CodeTooLarge,
				fmt.Sprintf("body exceeds %d bytes", limit))
			return nil, false
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		space := buf[len(buf):cap(buf)]
		// Never read past limit+1: one extra byte distinguishes "exactly
		// at the cap" from "over it" without buffering an oversized body.
		if over := int64(len(buf)+len(space)) - (limit + 1); over > 0 {
			space = space[:int64(len(space))-over]
		}
		n, err := r.Body.Read(space)
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			if tw != nil {
				tw.body = buf
			}
			if int64(len(buf)) > limit {
				s.writeErr(w, http.StatusRequestEntityTooLarge, api.CodeTooLarge,
					fmt.Sprintf("body exceeds %d bytes", limit))
				return nil, false
			}
			return buf, true
		}
		if err != nil {
			if tw != nil {
				tw.body = buf
			}
			s.writeErr(w, http.StatusBadRequest, api.CodeBadBody, err.Error())
			return nil, false
		}
	}
}

func (s *server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/kv/")
	if key == "" {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadKey, "empty key")
		return
	}
	kb := []byte(key)
	shard := s.shardHeaders(w, kb)
	start := reqStart(w)
	switch r.Method {
	case http.MethodGet:
		if !s.checkOwned(w, r, kb, shard) {
			return
		}
		v, ok, err := s.db.Get(kb)
		s.observeShard(shard, false, start)
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		if !ok {
			s.writeErr(w, http.StatusNotFound, api.CodeNotFound, "key not found")
			return
		}
		w.Write(v)
	case http.MethodPut, http.MethodPost:
		if s.deny(w) {
			return
		}
		// Body first, lock second: a slow request body must not hold the
		// flight lock open (it would let one slow client widen the fence
		// window arbitrarily). The ownership check and the engine write
		// share one critical section so a concurrent fence cannot slip
		// between them and purge an acked write.
		value, ok := s.readBody(w, r)
		if !ok {
			return
		}
		if s.coal != nil {
			s.coalesceWrite(w, kb, value, shard, start, wire.OpPut, s.internalOK(r))
			return
		}
		s.flight.RLock()
		defer s.flight.RUnlock()
		if !s.checkOwned(w, r, kb, shard) {
			return
		}
		if err := s.db.Put(kb, value); err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		s.observeShard(shard, true, start)
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if s.deny(w) {
			return
		}
		if s.coal != nil {
			s.coalesceWrite(w, kb, nil, shard, start, wire.OpDelete, s.internalOK(r))
			return
		}
		s.flight.RLock()
		defer s.flight.RUnlock()
		if !s.checkOwned(w, r, kb, shard) {
			return
		}
		if err := s.db.Delete(kb); err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		s.observeShard(shard, true, start)
		w.WriteHeader(http.StatusNoContent)
	default:
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/kv/")
	}
}

// owned reports whether this node owns key (true without a cluster).
func (s *server) owned(key []byte) bool {
	if s.cfg.src == nil {
		return true
	}
	m := s.cfg.src.Current()
	if m == nil {
		return true
	}
	return m.OwnerOf(key) == s.cfg.nodeID
}

// handleScan streams matching entries: results are encoded into the
// request's scratch buffer and flushed every scanFlushBytes, so a large
// scan reaches the client incrementally. JSON responses are a streamed
// array; with Accept: application/x-adcache-bin the response is a binary
// entry stream (wire.StreamDecoder consumes it). In both formats a
// response missing its terminator ("]" / the end frame) was cut off by a
// mid-stream engine error and must not be trusted as complete.
func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/scan")
		return
	}
	q := r.URL.Query()
	startKey := q.Get("start")
	n := 16
	if raw := q.Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 || parsed > 10_000 {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadLimit,
				fmt.Sprintf("n must be an integer in [1,10000], got %q", raw))
			return
		}
		n = parsed
	}
	end := q.Get("end")
	if end != "" && end <= startKey {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadLimit,
			fmt.Sprintf("end %q not after start %q", end, startKey))
		return
	}
	t0 := reqStart(w)
	binary := r.Header.Get("Accept") == wire.ContentType

	var m *cluster.ShardMap
	if s.cfg.src != nil {
		m = s.cfg.src.Current()
		if m != nil {
			w.Header().Set(api.HeaderEpoch, s.epochString(m.Epoch))
		}
		if s.cfg.nodeID != "" {
			w.Header().Set(api.HeaderNode, s.cfg.nodeID)
		}
	}

	it, err := s.db.NewIter()
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	defer it.Close()

	if binary {
		w.Header().Set("Content-Type", wire.ContentType)
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	tw, buf := scratch(w)
	if binary {
		buf = wire.AppendStreamHeader(buf)
	} else {
		buf = append(buf, '[')
	}

	// A scan touches many slots; charge it to the slot of its first
	// result (or the start key) — good enough for load attribution.
	slot := -1
	count := 0
	wrote := false
	ok := it.SeekGE([]byte(startKey))
	for ; ok && count < n; ok = it.Next() {
		k := it.Key()
		if end != "" && string(k) >= end {
			break
		}
		sh := 0
		if m != nil {
			sh = m.Shard(k)
			// Skip keys this node does not own under the current map (a
			// moved-away slot's leftover data must be invisible).
			if m.Owner[sh] != s.cfg.nodeID {
				continue
			}
		} else if s.nShards > 1 {
			sh = cluster.ShardOf(k, s.nShards)
		}
		if slot < 0 {
			slot = sh
		}
		if binary {
			buf = wire.AppendEntry(buf, k, it.Value())
		} else {
			if count > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"key":`...)
			buf = appendJSONBytes(buf, k)
			buf = append(buf, `,"value":`...)
			buf = appendJSONBytes(buf, it.Value())
			buf = append(buf, '}')
		}
		count++
		if len(buf) >= scanFlushBytes {
			if _, err := w.Write(buf); err != nil {
				return
			}
			wrote = true
			buf = buf[:0]
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	}
	if err := it.Err(); err != nil {
		if !wrote {
			// Nothing sent yet: the error envelope can still go out whole.
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		// Mid-stream failure: stop without the terminator so the client
		// sees a truncated (invalid) response instead of a silent prefix.
		if tw != nil {
			tw.out = buf
		}
		return
	}
	if binary {
		buf = wire.AppendStreamEnd(buf)
	} else {
		buf = append(buf, ']', '\n')
	}
	w.Write(buf)
	if slot < 0 {
		slot = 0
		if s.nShards > 1 {
			slot = cluster.ShardOf([]byte(startKey), s.nShards)
		}
	}
	s.observeShard(slot, false, t0)
	if tw != nil {
		tw.out = buf
	}
}

// batchPool recycles write batches across requests and coalesced groups.
var batchPool = sync.Pool{New: func() any { return lsm.NewBatch() }}

func getBatch() *lsm.Batch {
	b := batchPool.Get().(*lsm.Batch)
	b.Reset()
	return b
}

// handleBatch applies a multi-op body atomically. The body is JSON
// ([]api.BatchOp) by default or the binary batch framing when
// Content-Type is application/x-adcache-bin. Per-request work — map
// fetch, epoch header, internal-token check — is hoisted out of the op
// loop, and the touched-slot set is a fixed array (cluster.DefaultShards
// wide) rather than a map allocation.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/batch")
		return
	}
	if s.deny(w) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	isBin := r.Header.Get("Content-Type") == wire.ContentType
	var ops []api.BatchOp
	var dec wire.BatchDecoder
	if isBin {
		if err := dec.Init(body); err != nil {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadBody, err.Error())
			return
		}
	} else if err := json.Unmarshal(body, &ops); err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadBody, err.Error())
		return
	}
	start := reqStart(w)
	internal := s.internalOK(r)
	if s.coal != nil {
		s.coalesceBatch(w, isBin, ops, &dec, start, internal)
		return
	}
	// Ownership checks and the batch apply share one flight critical
	// section (body already read above): a concurrent fence either waits
	// for this whole batch to commit or forces it onto the new map.
	s.flight.RLock()
	defer s.flight.RUnlock()
	var m *cluster.ShardMap
	if s.cfg.src != nil {
		if m = s.cfg.src.Current(); m != nil {
			w.Header().Set(api.HeaderEpoch, s.epochString(m.Epoch))
		}
	}
	var touchedArr [cluster.DefaultShards]bool
	touched := touchedArr[:]
	if s.nShards > len(touched) {
		touched = make([]bool, s.nShards)
	}
	b := getBatch()
	defer batchPool.Put(b)
	// stage validates one op's key and ownership and marks its slot
	// touched; key may alias the request body (the batch copies it).
	stage := func(i int, kb []byte) bool {
		if len(kb) == 0 {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadKey, fmt.Sprintf("op %d: empty key", i))
			return false
		}
		if m != nil {
			shard := m.Shard(kb)
			if !internal {
				if owner := m.Owner[shard]; owner != s.cfg.nodeID {
					s.writeErr(w, http.StatusMisdirectedRequest, api.CodeWrongShard,
						fmt.Sprintf("shard %d owned by node %q", shard, owner))
					return false
				}
			}
			if shard < len(touched) {
				touched[shard] = true
			}
		} else {
			touched[0] = true
		}
		return true
	}
	if isBin {
		for i := 0; ; i++ {
			kind, kb, vb, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				s.writeErr(w, http.StatusBadRequest, api.CodeBadBody, err.Error())
				return
			}
			if !stage(i, kb) {
				return
			}
			if kind == wire.OpPut {
				b.Put(kb, vb)
			} else {
				b.Delete(kb)
			}
		}
	} else {
		for i, op := range ops {
			kb := []byte(op.Key)
			if !stage(i, kb) {
				return
			}
			switch op.Op {
			case "put":
				b.Put(kb, []byte(op.Value))
			case "delete":
				b.Delete(kb)
			default:
				s.writeErr(w, http.StatusBadRequest, api.CodeBadOp,
					fmt.Sprintf("op %d: unknown %q (want put|delete)", i, op.Op))
				return
			}
		}
	}
	if err := s.db.Apply(b); err != nil {
		s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	for sh := 0; sh < s.nShards && sh < len(touched); sh++ {
		if touched[sh] {
			s.observeShard(sh, true, start)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// coalesceBatch routes a decoded /v1/batch body through the write
// coalescer: the whole body is staged as one coalOp (outside any lock —
// body-shape validation does not depend on the shard map, and slot
// indices are fixed for the cluster's lifetime), and ownership of every
// staged slot is re-checked by the coalescer at apply time, rejecting
// the batch whole if any slot moved. Keys and values alias the pooled
// request body; coalesceApply blocks until the group commits, so the
// buffer cannot be recycled out from under the coalescer.
func (s *server) coalesceBatch(w http.ResponseWriter, isBin bool, ops []api.BatchOp, dec *wire.BatchDecoder, start time.Time, internal bool) {
	var m *cluster.ShardMap
	if s.cfg.src != nil {
		if m = s.cfg.src.Current(); m != nil {
			w.Header().Set(api.HeaderEpoch, s.epochString(m.Epoch))
		}
	}
	op := coalOpPool.Get().(*coalOp)
	op.reset(internal)
	bad := func(status int, code, msg string) {
		s.writeErr(w, status, code, msg)
		op.release()
		coalOpPool.Put(op)
	}
	stage := func(i int, kind byte, kb, vb []byte) bool {
		if len(kb) == 0 {
			bad(http.StatusBadRequest, api.CodeBadKey, fmt.Sprintf("op %d: empty key", i))
			return false
		}
		shard := 0
		if m != nil {
			shard = m.Shard(kb)
		}
		op.add(kind, kb, vb, shard)
		return true
	}
	if isBin {
		for i := 0; ; i++ {
			kind, kb, vb, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				bad(http.StatusBadRequest, api.CodeBadBody, err.Error())
				return
			}
			if !stage(i, kind, kb, vb) {
				return
			}
		}
	} else {
		for i, o := range ops {
			var kind byte
			var vb []byte
			switch o.Op {
			case "put":
				kind, vb = wire.OpPut, []byte(o.Value)
			case "delete":
				kind = wire.OpDelete
			default:
				bad(http.StatusBadRequest, api.CodeBadOp,
					fmt.Sprintf("op %d: unknown %q (want put|delete)", i, o.Op))
				return
			}
			if !stage(i, kind, []byte(o.Key), vb) {
				return
			}
		}
	}
	s.coalesceApply(w, op, start)
}

// handleStats serves the DB's unified snapshot verbatim — one struct, one
// JSON shape, no per-strategy cases.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.db.Metrics())
}

// handleShardMap serves the node's current map and accepts newer epochs
// from the shard manager.
func (s *server) handleShardMap(w http.ResponseWriter, r *http.Request) {
	if s.cfg.src == nil {
		s.writeErr(w, http.StatusNotFound, api.CodeNotFound, "node is not cluster-configured")
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.cfg.src.Current())
	case http.MethodPost:
		applier, ok := s.cfg.src.(MapApplier)
		if !ok {
			s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
				"node's map source is read-only")
			return
		}
		body, ok := s.readBody(w, r)
		if !ok {
			return
		}
		var m cluster.ShardMap
		if err := json.Unmarshal(body, &m); err != nil {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadMap, err.Error())
			return
		}
		// Installing a map is the migration fence: take the flight write
		// lock so every in-flight mutation that passed its ownership
		// check under the old map commits before the new map (and the
		// 204 that releases the shard manager to start copying) lands.
		s.flight.Lock()
		err := applier.Apply(&m)
		s.flight.Unlock()
		if err != nil {
			if m.Epoch < s.epoch() {
				s.writeErr(w, http.StatusConflict, api.CodeStaleEpoch, err.Error())
			} else {
				s.writeErr(w, http.StatusBadRequest, api.CodeBadMap, err.Error())
			}
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/shardmap")
	}
}

// handleShardStats serves the per-slot cumulative latency histograms the
// shard manager polls.
func (s *server) handleShardStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/shardstats")
		return
	}
	st := api.ShardStats{Node: s.cfg.nodeID, Epoch: s.epoch(), Shards: make([]api.ShardStat, s.nShards)}
	for i := 0; i < s.nShards; i++ {
		st.Shards[i] = api.ShardStat{
			Shard:  i,
			Reads:  s.readHist[i].Snapshot(),
			Writes: s.writeHist[i].Snapshot(),
		}
	}
	// Unified memory ledger (adaptive strategy only): lets the manager and
	// operators watch memory shift between memtables and the caches.
	if snap := s.db.Metrics(); snap.AdCache != nil {
		st.Budgets = make([]api.BudgetStat, 0, len(snap.AdCache.Budgets))
		for _, b := range snap.AdCache.Budgets {
			st.Budgets = append(st.Budgets, api.BudgetStat{
				Component:   b.Component,
				TargetBytes: b.TargetBytes,
				ActualBytes: b.ActualBytes,
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// parseShard extracts and bounds the ?shard= parameter.
func (s *server) parseShard(w http.ResponseWriter, r *http.Request) (int, bool) {
	raw := r.URL.Query().Get("shard")
	shard, err := strconv.Atoi(raw)
	if err != nil || shard < 0 || shard >= s.nShards {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadShard,
			fmt.Sprintf("shard must be an integer in [0,%d), got %q", s.nShards, raw))
		return 0, false
	}
	return shard, true
}

// handleMigrate is the shard manager's bulk-transfer surface: export,
// bulk-load, and purge one hash slot. All verbs require the internal
// header — this is control-plane, not client API.
func (s *server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	if !s.internalOK(r) {
		s.writeErr(w, http.StatusForbidden, api.CodeForbidden,
			"migration requires a valid "+api.HeaderInternal+" token")
		return
	}
	shard, ok := s.parseShard(w, r)
	if !ok {
		return
	}
	switch r.Method {
	case http.MethodGet:
		entries, err := s.collectShard(shard)
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(entries)
	case http.MethodPost:
		if s.deny(w) {
			return
		}
		body, ok := s.readBody(w, r)
		if !ok {
			return
		}
		var entries []api.MigrateEntry
		if err := json.Unmarshal(body, &entries); err != nil {
			s.writeErr(w, http.StatusBadRequest, api.CodeBadBody, err.Error())
			return
		}
		b := s.db.NewBatch()
		for _, e := range entries {
			b.Put(e.Key, e.Value)
		}
		if err := s.db.Apply(b); err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if s.deny(w) {
			return
		}
		if s.cfg.src != nil {
			if m := s.cfg.src.Current(); m != nil && m.Owner[shard] == s.cfg.nodeID {
				s.writeErr(w, http.StatusConflict, api.CodeOwnedShard,
					fmt.Sprintf("refusing to purge shard %d: still owned by this node", shard))
				return
			}
		}
		entries, err := s.collectShard(shard)
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		b := s.db.NewBatch()
		for _, e := range entries {
			b.Delete(e.Key)
		}
		if err := s.db.Apply(b); err != nil {
			s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			"method "+r.Method+" not allowed on /v1/migrate")
	}
}

// collectShard iterates the whole local keyspace collecting entries in
// slot shard. Hash partitioning scatters a slot across the key space, so
// this is a full scan — fine at reproduction scale; a range-partitioned
// map would make it a bounded scan.
func (s *server) collectShard(shard int) ([]api.MigrateEntry, error) {
	it, err := s.db.NewIter()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []api.MigrateEntry
	for ok := it.First(); ok; ok = it.Next() {
		k := it.Key()
		if cluster.ShardOf(k, s.nShards) != shard {
			continue
		}
		out = append(out, api.MigrateEntry{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Err()
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleDebugVars serves the standard expvar payload (cmdline, memstats,
// and anything the process published) with the DB's registry snapshot
// appended under "adcache". The DB registry is merged here rather than
// expvar.Publish'ed because Publish is process-global and panics on
// duplicates — one process may run many DBs.
func (s *server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value.String())
	})
	snap, err := json.Marshal(s.db.Registry().Snapshot())
	if err != nil {
		snap = []byte("{}")
	}
	fmt.Fprintf(w, "%q: %s\n}\n", "adcache", snap)
}
