// Package server exposes a DB over HTTP — a thin, dependency-free network
// front end so the store can be exercised from other processes and
// languages (cmd/adcached serves it).
//
// Endpoints:
//
//	GET    /kv/{key}                 → 200 value | 404
//	PUT    /kv/{key}   body=value    → 204
//	DELETE /kv/{key}                 → 204
//	GET    /scan?start=K&n=16        → 200 JSON [{"key":...,"value":...}]
//	GET    /scan?start=K&end=L       → bounded variant
//	POST   /batch      JSON ops      → 204 (atomic)
//	GET    /stats                    → 200 JSON engine + cache counters
//
// Keys and values are raw bytes in paths/bodies (keys URL-escaped); the
// scan and stats endpoints return JSON.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"adcache"
)

// Handler returns an http.Handler serving db.
func Handler(db *adcache.DB) http.Handler {
	mux := http.NewServeMux()
	s := &server{db: db}
	mux.HandleFunc("/kv/", s.handleKV)
	mux.HandleFunc("/scan", s.handleScan)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

type server struct {
	db *adcache.DB
}

func (s *server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" {
		http.Error(w, "empty key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		v, ok, err := s.db.Get([]byte(key))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(v)
	case http.MethodPut, http.MethodPost:
		value, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.db.Put([]byte(key), value); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if err := s.db.Delete([]byte(key)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// scanEntry is the JSON shape of one scan result.
type scanEntry struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	start := q.Get("start")
	n := 16
	if raw := q.Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 || parsed > 10_000 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	var kvs []struct{ Key, Value []byte }
	var err error
	if end := q.Get("end"); end != "" {
		res, e := s.db.ScanRange([]byte(start), []byte(end), n)
		err = e
		for _, kv := range res {
			kvs = append(kvs, struct{ Key, Value []byte }{kv.Key, kv.Value})
		}
	} else {
		res, e := s.db.Scan([]byte(start), n)
		err = e
		for _, kv := range res {
			kvs = append(kvs, struct{ Key, Value []byte }{kv.Key, kv.Value})
		}
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := make([]scanEntry, len(kvs))
	for i, kv := range kvs {
		out[i] = scanEntry{Key: string(kv.Key), Value: string(kv.Value)}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// batchOp is the JSON shape of one batched operation.
type batchOp struct {
	Op    string `json:"op"` // "put" or "delete"
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var ops []batchOp
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&ops); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	b := s.db.NewBatch()
	for i, op := range ops {
		switch op.Op {
		case "put":
			b.Put([]byte(op.Key), []byte(op.Value))
		case "delete":
			b.Delete([]byte(op.Key))
		default:
			http.Error(w, fmt.Sprintf("op %d: unknown %q", i, op.Op), http.StatusBadRequest)
			return
		}
	}
	if err := s.db.Apply(b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// statsResponse is the JSON shape of /stats.
type statsResponse struct {
	Strategy    string                 `json:"strategy"`
	SSTReads    int64                  `json:"sst_reads"`
	LevelFiles  []int                  `json:"level_files"`
	SortedRuns  int                    `json:"sorted_runs"`
	Entries     uint64                 `json:"entries"`
	Compactions int64                  `json:"compactions"`
	Cache       adcache.CacheCounters  `json:"cache"`
	AdCache     map[string]interface{} `json:"adcache,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.db.LSM().Metrics()
	resp := statsResponse{
		Strategy:    s.db.Strategy().String(),
		SSTReads:    s.db.SSTReads(),
		LevelFiles:  m.LevelFiles,
		SortedRuns:  m.SortedRuns,
		Entries:     m.TotalEntries,
		Compactions: m.Compactions,
		Cache:       s.db.CacheCounters(),
	}
	if ad := s.db.AdCache(); ad != nil {
		p := ad.CurrentParams()
		resp.AdCache = map[string]interface{}{
			"range_ratio":     p.RangeRatio,
			"point_threshold": p.PointThreshold,
			"scan_a":          p.ScanA,
			"scan_b":          p.ScanB,
			"windows":         ad.Windows(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
