// Package server exposes a DB over HTTP — a thin, dependency-free network
// front end so the store can be exercised from other processes and
// languages (cmd/adcached serves it).
//
// Endpoints:
//
//	GET    /kv/{key}                 → 200 value | 404
//	PUT    /kv/{key}   body=value    → 204
//	DELETE /kv/{key}                 → 204
//	GET    /scan?start=K&n=16        → 200 JSON [{"key":...,"value":...}]
//	GET    /scan?start=K&end=L       → bounded variant
//	POST   /batch      JSON ops      → 204 (atomic)
//	GET    /stats                    → 200 JSON adcache.MetricsSnapshot
//	GET    /metrics                  → 200 Prometheus text exposition
//	GET    /debug/vars               → 200 expvar JSON + registry snapshot
//
// Keys and values are raw bytes in paths/bodies (keys URL-escaped); the
// scan and stats endpoints return JSON. Every request is measured into the
// DB's metrics registry (http_requests_total and http_request_nanos, both
// labeled by route), so the server's own latency shows up next to the
// engine's under /metrics.
package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"adcache"
	"adcache/internal/metrics"
)

// Options configures a Handler.
type Options struct {
	// ReadOnly rejects every mutating request (PUT/POST/DELETE on /kv,
	// POST /batch) with 403, leaving reads and observability endpoints up —
	// the mode for exposing a store to dashboards without write access.
	ReadOnly bool
	// MaxBodyBytes caps request bodies on /kv and /batch
	// (default 64 MiB).
	MaxBodyBytes int64
}

// Handler returns an http.Handler serving db with default Options.
func Handler(db *adcache.DB) http.Handler { return NewHandler(db, Options{}) }

// NewHandler returns an http.Handler serving db under opts.
func NewHandler(db *adcache.DB, opts Options) http.Handler {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	s := &server{db: db, opts: opts, reg: db.Registry()}
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", s.handleKV)
	mux.HandleFunc("/scan", s.handleScan)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleDebugVars)
	return s.instrument(mux)
}

type server struct {
	db   *adcache.DB
	opts Options
	reg  *metrics.Registry
}

// route classifies a request path into a bounded label set, so the metric
// cardinality cannot grow with the key space.
func route(path string) string {
	switch {
	case strings.HasPrefix(path, "/kv/"):
		return "kv"
	case path == "/scan":
		return "scan"
	case path == "/batch":
		return "batch"
	case path == "/stats":
		return "stats"
	case path == "/metrics":
		return "metrics"
	case strings.HasPrefix(path, "/debug/"):
		return "debug"
	default:
		return "other"
	}
}

// instrument wraps next with per-route request counting and latency
// histograms on the DB's registry. Metrics are get-or-create, so the first
// request on each route registers its series.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := route(r.URL.Path)
		h := s.reg.Histogram(fmt.Sprintf("http_request_nanos{route=%q}", rt),
			"HTTP request latency by route.")
		s.reg.Counter(fmt.Sprintf("http_requests_total{route=%q}", rt),
			"HTTP requests served by route.").Inc()
		start := time.Now()
		next.ServeHTTP(w, r)
		h.ObserveSince(start)
	})
}

// deny reports (and handles) a mutating request arriving in read-only mode.
func (s *server) deny(w http.ResponseWriter) bool {
	if !s.opts.ReadOnly {
		return false
	}
	http.Error(w, "read-only mode", http.StatusForbidden)
	return true
}

func (s *server) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" {
		http.Error(w, "empty key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		v, ok, err := s.db.Get([]byte(key))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(v)
	case http.MethodPut, http.MethodPost:
		if s.deny(w) {
			return
		}
		value, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.db.Put([]byte(key), value); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		if s.deny(w) {
			return
		}
		if err := s.db.Delete([]byte(key)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// scanEntry is the JSON shape of one scan result.
type scanEntry struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	start := q.Get("start")
	n := 16
	if raw := q.Get("n"); raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil || parsed < 1 || parsed > 10_000 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	var kvs []struct{ Key, Value []byte }
	var err error
	if end := q.Get("end"); end != "" {
		res, e := s.db.ScanRange([]byte(start), []byte(end), n)
		err = e
		for _, kv := range res {
			kvs = append(kvs, struct{ Key, Value []byte }{kv.Key, kv.Value})
		}
	} else {
		res, e := s.db.Scan([]byte(start), n)
		err = e
		for _, kv := range res {
			kvs = append(kvs, struct{ Key, Value []byte }{kv.Key, kv.Value})
		}
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out := make([]scanEntry, len(kvs))
	for i, kv := range kvs {
		out[i] = scanEntry{Key: string(kv.Key), Value: string(kv.Value)}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// batchOp is the JSON shape of one batched operation.
type batchOp struct {
	Op    string `json:"op"` // "put" or "delete"
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.deny(w) {
		return
	}
	var ops []batchOp
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&ops); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	b := s.db.NewBatch()
	for i, op := range ops {
		switch op.Op {
		case "put":
			b.Put([]byte(op.Key), []byte(op.Value))
		case "delete":
			b.Delete([]byte(op.Key))
		default:
			http.Error(w, fmt.Sprintf("op %d: unknown %q", i, op.Op), http.StatusBadRequest)
			return
		}
	}
	if err := s.db.Apply(b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStats serves the DB's unified snapshot verbatim — one struct, one
// JSON shape, no per-strategy cases.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.db.Metrics())
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleDebugVars serves the standard expvar payload (cmdline, memstats,
// and anything the process published) with the DB's registry snapshot
// appended under "adcache". The DB registry is merged here rather than
// expvar.Publish'ed because Publish is process-global and panics on
// duplicates — one process may run many DBs.
func (s *server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value.String())
	})
	snap, err := json.Marshal(s.db.Registry().Snapshot())
	if err != nil {
		snap = []byte("{}")
	}
	fmt.Fprintf(w, "%q: %s\n}\n", "adcache", snap)
}
