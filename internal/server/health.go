package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"adcache/internal/api"
)

// DrainState is the shared flag between a process's shutdown path and
// its server's /v1/health readiness: the process flips it when graceful
// shutdown begins, and the health endpoint starts answering 503 so load
// balancers and the shard manager stop routing new work here while
// in-flight requests finish. Zero value is usable; methods are safe on a
// nil receiver (a server without one is simply never draining).
type DrainState struct {
	draining atomic.Bool
}

// StartDrain marks the node as draining. Idempotent.
func (d *DrainState) StartDrain() { d.draining.Store(true) }

// Draining reports whether drain has begun.
func (d *DrainState) Draining() bool { return d != nil && d.draining.Load() }

// WithDrainState wires a DrainState into /v1/health readiness; the
// owning process flips it on shutdown (see cmd/adcached).
func WithDrainState(ds *DrainState) Option { return func(c *config) { c.drain = ds } }

// handleHealth serves GET /v1/health.
//
// Liveness — `GET /v1/health?probe=live` — answers 200 whenever the
// process can serve HTTP at all, regardless of engine state: a deadlocked
// or crashed process fails it, a degraded one does not.
//
// Readiness — plain `GET /v1/health` — answers 200 only when the node
// should receive traffic: not draining for shutdown, and the engine
// error-handler not in read-only degraded mode. "retrying" (background
// errors under retry) stays ready: reads and writes still succeed while
// the engine works the problem. The body is the api.Health document in
// both modes, so a 503's cause is always one GET away.
//
// The route bypasses the data-plane concurrency limit (see dataRoute):
// an overloaded node must still answer probes, or overload would read as
// death and invite a restart stampede.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "health is GET-only")
		return
	}
	h := api.Health{
		Status:   "ok",
		BgState:  s.db.Metrics().Engine.BgState,
		Draining: s.cfg.drain.Draining(),
		Node:     s.cfg.nodeID,
		Epoch:    s.epoch(),
	}
	switch {
	case h.Draining:
		h.Status = "draining"
	case h.BgState == "read-only":
		h.Status = "degraded"
	}
	status := http.StatusOK
	if h.Status != "ok" && r.URL.Query().Get("probe") != "live" {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(h)
}
