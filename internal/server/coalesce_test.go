package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"adcache"
	"adcache/internal/api"
	"adcache/internal/cluster"
)

// send issues one request without touching testing.T — safe from
// goroutines (t.Fatal must not be called off the test goroutine).
func send(method, url, body string) (int, string, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, buf.String(), nil
}

// coalServer builds a plain coalescing server.
func coalServer(t *testing.T) (*httptest.Server, *adcache.DB) {
	t.Helper()
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(db, WithWriteCoalescing(200*time.Microsecond, 64)))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db
}

// coalClusterServerDB is clusterServerDB with write coalescing on.
func coalClusterServerDB(t *testing.T, view *cluster.NodeView) (*httptest.Server, *adcache.DB) {
	t.Helper()
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(db,
		WithCluster(view), WithInternalToken(testToken),
		WithWriteCoalescing(200*time.Microsecond, 64)))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db
}

// TestCoalescedWrites: concurrent single-op puts and deletes through the
// coalescer all land (and are individually acked), and the coalescer
// actually grouped them — fewer groups than ops.
func TestCoalescedWrites(t *testing.T) {
	srv, db := coalServer(t)
	const n = 64

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := send("PUT", fmt.Sprintf("%s/v1/kv/coal%03d", srv.URL, i), fmt.Sprintf("v%03d", i))
			if err != nil {
				errs <- err
			} else if status != 204 {
				errs <- fmt.Errorf("put %d = %d %q", i, status, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := db.Get([]byte(fmt.Sprintf("coal%03d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("key %d: %q ok=%v err=%v", i, v, ok, err)
		}
	}

	// Deletes ride the same path.
	var wg2 sync.WaitGroup
	for i := 0; i < n; i += 2 {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			send("DELETE", fmt.Sprintf("%s/v1/kv/coal%03d", srv.URL, i), "")
		}(i)
	}
	wg2.Wait()
	for i := 0; i < n; i++ {
		_, ok, _ := db.Get([]byte(fmt.Sprintf("coal%03d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("after delete: key %d present=%v want %v", i, ok, want)
		}
	}

	reg := db.Registry()
	groups := reg.Counter("http_coalesce_groups_total", "").Value()
	ops := reg.Counter("http_coalesced_ops_total", "").Value()
	if ops != n+n/2 {
		t.Fatalf("coalesced ops = %d, want %d", ops, n+n/2)
	}
	if groups <= 0 || groups > ops {
		t.Fatalf("groups = %d (ops %d)", groups, ops)
	}
	t.Logf("coalesced %d ops into %d groups", ops, groups)
}

// TestCoalescedBatch: batch bodies ride the coalescer too — concurrent
// /v1/batch posts all land atomically and are grouped with one another
// (and with singles) into shared applies.
func TestCoalescedBatch(t *testing.T) {
	srv, db := coalServer(t)
	const batches, perBatch = 16, 4

	var wg sync.WaitGroup
	errs := make(chan error, batches+1)
	for i := 0; i < batches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var ops []api.BatchOp
			for j := 0; j < perBatch; j++ {
				ops = append(ops, api.BatchOp{Op: "put",
					Key:   fmt.Sprintf("cb%02d-%d", i, j),
					Value: fmt.Sprintf("v%02d-%d", i, j)})
			}
			body, _ := json.Marshal(ops)
			status, rbody, err := send("POST", srv.URL+"/v1/batch", string(body))
			if err != nil {
				errs <- err
			} else if status != 204 {
				errs <- fmt.Errorf("batch %d = %d %q", i, status, rbody)
			}
		}(i)
	}
	// One single-op write races the batches through the same coalescer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, rbody, err := send("PUT", srv.URL+"/v1/kv/cb-single", "sv")
		if err != nil {
			errs <- err
		} else if status != 204 {
			errs <- fmt.Errorf("single = %d %q", status, rbody)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < batches; i++ {
		for j := 0; j < perBatch; j++ {
			k := fmt.Sprintf("cb%02d-%d", i, j)
			v, ok, err := db.Get([]byte(k))
			if err != nil || !ok || string(v) != fmt.Sprintf("v%02d-%d", i, j) {
				t.Fatalf("key %q: %q ok=%v err=%v", k, v, ok, err)
			}
		}
	}
	if v, ok, _ := db.Get([]byte("cb-single")); !ok || string(v) != "sv" {
		t.Fatalf("single key: %q ok=%v", v, ok)
	}

	reg := db.Registry()
	groups := reg.Counter("http_coalesce_groups_total", "").Value()
	ops := reg.Counter("http_coalesced_ops_total", "").Value()
	if want := int64(batches*perBatch + 1); ops != want {
		t.Fatalf("coalesced ops = %d, want %d", ops, want)
	}
	if groups <= 0 || groups > int64(batches+1) {
		t.Fatalf("groups = %d for %d requests", groups, batches+1)
	}
	t.Logf("coalesced %d ops (%d requests) into %d groups", ops, batches+1, groups)
}

// TestCoalescedBatchWrongShard: a coalesced batch containing one foreign
// op is rejected whole at apply time — its owned-slot ops must not leak
// into the shared group apply.
func TestCoalescedBatchWrongShard(t *testing.T) {
	view, mine, theirs := twoNodeView(t)
	srv, db := coalClusterServerDB(t, view)

	ops := []api.BatchOp{
		{Op: "put", Key: mine, Value: "ok"},
		{Op: "put", Key: theirs, Value: "foreign"},
	}
	body, _ := json.Marshal(ops)
	resp, rbody := do(t, "POST", srv.URL+"/v1/batch", string(body))
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("mixed batch = %d %q", resp.StatusCode, rbody)
	}
	if env := envelope(t, rbody); env.Code != api.CodeWrongShard {
		t.Fatalf("code = %q", env.Code)
	}
	for _, k := range []string{mine, theirs} {
		if _, ok, _ := db.Get([]byte(k)); ok {
			t.Fatalf("rejected batch leaked key %q into the engine", k)
		}
	}

	// A clean batch for owned slots still lands.
	ops = ops[:1]
	body, _ = json.Marshal(ops)
	if resp, rbody := do(t, "POST", srv.URL+"/v1/batch", string(body)); resp.StatusCode != 204 {
		t.Fatalf("owned batch = %d %q", resp.StatusCode, rbody)
	}
	if v, ok, _ := db.Get([]byte(mine)); !ok || string(v) != "ok" {
		t.Fatalf("owned batch write missing: %q ok=%v", v, ok)
	}
}

// TestCoalescedWrongShard: the coalescer re-checks ownership, so a write
// for a foreign slot is answered 421 and never committed.
func TestCoalescedWrongShard(t *testing.T) {
	view, _, theirs := twoNodeView(t)
	srv, db := coalClusterServerDB(t, view)

	resp, body := do(t, "PUT", srv.URL+"/v1/kv/"+theirs, "v")
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign PUT = %d %q", resp.StatusCode, body)
	}
	if env := envelope(t, body); env.Code != api.CodeWrongShard {
		t.Fatalf("code = %q", env.Code)
	}
	if _, ok, _ := db.Get([]byte(theirs)); ok {
		t.Fatal("rejected write reached the engine")
	}
}

// TestFenceWriteRaceCoalesced is TestFenceWriteRace with coalescing on:
// an in-flight PUT whose body completes only after the fence must be
// answered WRONG_SHARD by the coalescer's re-check and must not reach the
// engine — a coalesced ack still guarantees commit before the fence.
func TestFenceWriteRaceCoalesced(t *testing.T) {
	view, mine, _ := twoNodeView(t)
	srv, db := coalClusterServerDB(t, view)

	pr, pw := io.Pipe()
	type outcome struct {
		status int
		code   string
	}
	done := make(chan outcome, 1)
	go func() {
		req, err := http.NewRequest("PUT", srv.URL+"/v1/kv/"+mine, pr)
		if err != nil {
			done <- outcome{0, err.Error()}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- outcome{0, err.Error()}
			return
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		var env api.Envelope
		json.Unmarshal(buf.Bytes(), &env)
		done <- outcome{resp.StatusCode, env.Code}
	}()

	// Get the request in flight with its body still open…
	if _, err := pw.Write([]byte("v")); err != nil {
		t.Fatal(err)
	}
	// …then fence the key's slot away to the other node.
	cur := view.Current()
	next, err := cur.WithMove(cluster.ShardOf([]byte(mine), cur.Shards), "other")
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := json.Marshal(next)
	if resp, body := do(t, "POST", srv.URL+"/v1/shardmap", string(nb)); resp.StatusCode != 204 {
		t.Fatalf("fence POST = %d %q", resp.StatusCode, body)
	}
	// Only now let the body finish. The op is coalesced after the fence,
	// so the group's ownership re-check runs under the post-fence map.
	pw.Write([]byte("2"))
	pw.Close()

	o := <-done
	if o.status != http.StatusMisdirectedRequest || o.code != api.CodeWrongShard {
		t.Fatalf("post-fence PUT = %d %q, want 421 WRONG_SHARD", o.status, o.code)
	}
	if _, ok, err := db.Get([]byte(mine)); err != nil || ok {
		t.Fatalf("rejected write reached the engine (ok=%v err=%v)", ok, err)
	}
}

// TestCoalescedFenceStress: writers hammer one owned slot while maps flip
// ownership away and back; every 204-acked write must be readable under a
// map where this node owns the key (no lost acked writes), and 421s must
// never have committed... the weaker but mechanical check here: acked
// writes present, total = acked + rejected.
func TestCoalescedFenceStress(t *testing.T) {
	view, mine, _ := twoNodeView(t)
	srv, db := coalClusterServerDB(t, view)

	const writers, rounds = 8, 20
	var acked sync.Map
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				val := fmt.Sprintf("w%d-%d", wkr, i)
				status, _, err := send("PUT", srv.URL+"/v1/kv/"+mine, val)
				if err != nil {
					t.Errorf("PUT: %v", err)
					return
				}
				if status == 204 {
					acked.Store(val, true)
				} else if status != http.StatusMisdirectedRequest {
					t.Errorf("PUT = %d", status)
					return
				}
			}
		}(wkr)
	}
	// Flip the slot away and back repeatedly.
	slot := cluster.ShardOf([]byte(mine), view.Current().Shards)
	for r := 0; r < rounds; r++ {
		for _, owner := range []string{"other", "self"} {
			cur := view.Current()
			next, err := cur.WithMove(slot, owner)
			if err != nil {
				t.Fatal(err)
			}
			nb, _ := json.Marshal(next)
			if resp, body := do(t, "POST", srv.URL+"/v1/shardmap", string(nb)); resp.StatusCode != 204 {
				t.Fatalf("fence POST = %d %q", resp.StatusCode, body)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
	close(stop)
	wg.Wait()
	// The key's final value must be one some writer was acked for (the
	// last acked write wins; an unacked write must never be the survivor).
	v, ok, err := db.Get([]byte(mine))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		if _, was := acked.Load(string(v)); !was {
			t.Fatalf("surviving value %q was never acked", v)
		}
	}
}
