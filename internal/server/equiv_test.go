package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"adcache"
	"adcache/internal/api"
	"adcache/internal/api/wire"
)

// postBatch posts a batch body with an explicit content type.
func postBatch(t *testing.T, base string, contentType string, body []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, buf.String()
}

// scanJSON fetches a scan as the default JSON array.
func scanJSON(t *testing.T, base, start string, n int) []api.ScanEntry {
	t.Helper()
	resp, body := do(t, "GET", fmt.Sprintf("%s/v1/scan?start=%s&n=%d", base, url.QueryEscape(start), n), "")
	if resp.StatusCode != 200 {
		t.Fatalf("scan = %d %q", resp.StatusCode, body)
	}
	var out []api.ScanEntry
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("scan body %q: %v", body, err)
	}
	return out
}

// scanBinary fetches a scan as a binary entry stream and decodes it.
func scanBinary(t *testing.T, base, start string, n int) []api.ScanEntry {
	t.Helper()
	req, err := http.NewRequest("GET", fmt.Sprintf("%s/v1/scan?start=%s&n=%d", base, url.QueryEscape(start), n), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("binary scan = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, wire.ContentType)
	}
	var d wire.StreamDecoder
	d.Reset(resp.Body)
	var out []api.ScanEntry
	for {
		k, v, err := d.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		out = append(out, api.ScanEntry{Key: string(k), Value: string(v)})
	}
}

// TestBatchBinaryEquivalence: the same op sequence posted as JSON and as
// the binary framing produces identical engine state and identical scan
// results in both response formats.
func TestBatchBinaryEquivalence(t *testing.T) {
	srvJSON, dbJSON := testServer(t)
	srvBin, dbBin := testServer(t)

	type op struct {
		op, key, value string
	}
	ops := []op{
		{"put", "eq/a", "1"},
		{"put", "eq/b", "two"},
		{"put", "eq/esc", "quote\" back\\slash \n tab\t unicode→"},
		{"put", "eq/gone", "x"},
		{"delete", "eq/gone", ""},
		{"put", "eq/b", "two-rewritten"},
	}

	var jsonOps []api.BatchOp
	bin := wire.AppendBatchHeader(nil, len(ops))
	for _, o := range ops {
		jsonOps = append(jsonOps, api.BatchOp{Op: o.op, Key: o.key, Value: o.value})
		if o.op == "put" {
			bin = wire.AppendPut(bin, []byte(o.key), []byte(o.value))
		} else {
			bin = wire.AppendDelete(bin, []byte(o.key))
		}
	}
	jb, _ := json.Marshal(jsonOps)

	if st, body := postBatch(t, srvJSON.URL, "application/json", jb); st != 204 {
		t.Fatalf("JSON batch = %d %q", st, body)
	}
	if st, body := postBatch(t, srvBin.URL, wire.ContentType, bin); st != 204 {
		t.Fatalf("binary batch = %d %q", st, body)
	}

	for name, db := range map[string]*adcache.DB{"json": dbJSON, "bin": dbBin} {
		if _, ok, _ := db.Get([]byte("eq/gone")); ok {
			t.Fatalf("%s: deleted key still present", name)
		}
		if v, _, _ := db.Get([]byte("eq/b")); string(v) != "two-rewritten" {
			t.Fatalf("%s: eq/b = %q", name, v)
		}
	}

	// All four scan views (2 servers × 2 formats) must agree.
	want := scanJSON(t, srvJSON.URL, "eq/", 100)
	if len(want) != 3 {
		t.Fatalf("scan len = %d, want 3: %v", len(want), want)
	}
	for i, got := range [][]api.ScanEntry{
		scanBinary(t, srvJSON.URL, "eq/", 100),
		scanJSON(t, srvBin.URL, "eq/", 100),
		scanBinary(t, srvBin.URL, "eq/", 100),
	} {
		if len(got) != len(want) {
			t.Fatalf("view %d: len %d != %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("view %d entry %d: %+v != %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestBinaryScanRawBytes: the binary stream carries value bytes JSON
// cannot (invalid UTF-8 survives verbatim; the JSON view degrades it to
// U+FFFD exactly like encoding/json would).
func TestBinaryScanRawBytes(t *testing.T) {
	srv, db := testServer(t)
	raw := []byte{0x00, 0x01, 0xfe, 0xff, '"', '\\', '\n'}
	if err := db.Put([]byte("raw/k"), raw); err != nil {
		t.Fatal(err)
	}

	bin := scanBinary(t, srv.URL, "raw/", 10)
	if len(bin) != 1 || bin[0].Value != string(raw) {
		t.Fatalf("binary scan = %+v, want raw value %q", bin, raw)
	}

	js := scanJSON(t, srv.URL, "raw/", 10)
	enc, _ := json.Marshal(string(raw)) // encoding/json's lossy view
	var wantJSON string
	json.Unmarshal(enc, &wantJSON)
	if len(js) != 1 || js[0].Value != wantJSON {
		t.Fatalf("JSON scan = %+v, want %q", js, wantJSON)
	}
}

// TestBinaryBatchErrors: malformed binary bodies and per-op violations
// map onto the same typed envelope codes as JSON bodies.
func TestBinaryBatchErrors(t *testing.T) {
	srv, _ := testServer(t)

	cases := []struct {
		name string
		body []byte
		code string
	}{
		{"corrupt", []byte{0x09, 0x01}, api.CodeBadBody},
		{"truncated", wire.AppendBatchHeader(nil, 3), api.CodeBadBody},
		{"empty key", wire.AppendPut(wire.AppendBatchHeader(nil, 1), nil, []byte("v")), api.CodeBadKey},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, body := postBatch(t, srv.URL, wire.ContentType, tc.body)
			if st != 400 {
				t.Fatalf("status = %d %q", st, body)
			}
			if env := envelope(t, body); env.Code != tc.code {
				t.Fatalf("code = %q, want %q", env.Code, tc.code)
			}
		})
	}
}

// TestBinaryBatchWrongShard: ownership is enforced identically for
// binary batches.
func TestBinaryBatchWrongShard(t *testing.T) {
	view, _, theirs := twoNodeView(t)
	srv := clusterServer(t, view)

	bin := wire.AppendPut(wire.AppendBatchHeader(nil, 1), []byte(theirs), []byte("v"))
	st, body := postBatch(t, srv.URL, wire.ContentType, bin)
	if st != http.StatusMisdirectedRequest {
		t.Fatalf("status = %d %q", st, body)
	}
	if env := envelope(t, body); env.Code != api.CodeWrongShard {
		t.Fatalf("code = %q", env.Code)
	}
}

// TestPprofOptIn: /debug/pprof is absent by default and mounted with
// WithPprof.
func TestPprofOptIn(t *testing.T) {
	srv, _ := testServer(t)
	if resp, _ := do(t, "GET", srv.URL+"/debug/pprof/", ""); resp.StatusCode != 404 {
		t.Fatalf("default /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	psrv := httptest.NewServer(New(db, WithPprof()))
	t.Cleanup(func() {
		psrv.Close()
		db.Close()
	})
	resp, body := do(t, "GET", psrv.URL+"/debug/pprof/", "")
	if resp.StatusCode != 200 || !bytes.Contains([]byte(body), []byte("goroutine")) {
		t.Fatalf("pprof index = %d %q…", resp.StatusCode, body[:min(len(body), 80)])
	}
}
