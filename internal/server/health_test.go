package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"adcache"
	"adcache/internal/api"
)

func getHealth(t *testing.T, url string) (int, api.Health) {
	t.Helper()
	resp, body := do(t, http.MethodGet, url, "")
	var h api.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("health body %q: %v", body, err)
	}
	return resp.StatusCode, h
}

func TestHealthReadyAndLive(t *testing.T) {
	srv, _ := testServer(t)
	code, h := getHealth(t, srv.URL+"/v1/health")
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("ready health = %d %+v, want 200 ok", code, h)
	}
	if h.BgState != "healthy" {
		t.Fatalf("bg_state = %q, want healthy", h.BgState)
	}
	if code, _ := getHealth(t, srv.URL+"/v1/health?probe=live"); code != http.StatusOK {
		t.Fatalf("liveness = %d, want 200", code)
	}
	resp, body := do(t, http.MethodPost, srv.URL+"/v1/health", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST health = %d (%s), want 405", resp.StatusCode, body)
	}
}

func TestHealthDraining(t *testing.T) {
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ds := &DrainState{}
	srv := httptest.NewServer(New(db, WithDrainState(ds)))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})

	if code, _ := getHealth(t, srv.URL+"/v1/health"); code != http.StatusOK {
		t.Fatalf("pre-drain readiness = %d, want 200", code)
	}
	ds.StartDrain()
	code, h := getHealth(t, srv.URL+"/v1/health")
	if code != http.StatusServiceUnavailable || h.Status != "draining" || !h.Draining {
		t.Fatalf("draining health = %d %+v, want 503 draining", code, h)
	}
	// Liveness stays green while draining: the process is up and must
	// not be restarted mid-drain.
	if code, _ := getHealth(t, srv.URL+"/v1/health?probe=live"); code != http.StatusOK {
		t.Fatalf("draining liveness = %d, want 200", code)
	}
}
