package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"adcache"
)

// Allocation-regression tests for the service hot path, mirroring the
// engine-level tests in internal/lsm: drive the full handler (mux,
// instrumentation, routing headers, engine call) against a discarding
// ResponseWriter with a reused request and pin the per-request budget.
// The budgets are measured ceilings with headroom, not aspirations —
// raising one is a reviewable event. Under -race the paths still run but
// the numeric assertions relax (sync.Pool drops puts randomly).

// nullRW discards the response; its header map is reused across runs so
// only per-request slice values count against the handler.
type nullRW struct {
	h      http.Header
	status int
}

func (n *nullRW) Header() http.Header { return n.h }

func (n *nullRW) Write(b []byte) (int, error) {
	if n.status == 0 {
		n.status = http.StatusOK // implicit 200, as net/http would record
	}
	return len(b), nil
}

func (n *nullRW) WriteHeader(status int) { n.status = status }

// rcBody is a resettable no-op-close request body.
type rcBody struct{ *bytes.Reader }

func (rcBody) Close() error { return nil }

func allocDB(t *testing.T) (*adcache.DB, http.Handler) {
	t.Helper()
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, New(db)
}

func TestGetHandlerAllocs(t *testing.T) {
	db, h := allocDB(t)
	if err := db.Put([]byte("allockey"), []byte("alloc-value")); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/v1/kv/allockey", nil)
	rw := &nullRW{h: make(http.Header)}
	h.ServeHTTP(rw, req) // warm pools and lazy state
	allocs := testing.AllocsPerRun(300, func() {
		h.ServeHTTP(rw, req)
	})
	t.Logf("GET /v1/kv allocs/op: %.1f", allocs)
	if rw.status != 200 {
		t.Fatalf("status = %d", rw.status)
	}
	// Budget: key []byte conversion + the engine's pinned read-path
	// allocations (value copy and iterator state).
	if !raceEnabled && allocs > 8 {
		t.Fatalf("GET handler allocs %.1f > budget 8", allocs)
	}
}

func TestPutHandlerAllocs(t *testing.T) {
	_, h := allocDB(t)
	val := []byte("alloc-value")
	br := bytes.NewReader(nil)
	req := httptest.NewRequest("PUT", "/v1/kv/allockey", nil)
	req.Body = rcBody{br}
	req.ContentLength = int64(len(val))
	rw := &nullRW{h: make(http.Header)}
	br.Reset(val)
	h.ServeHTTP(rw, req)
	allocs := testing.AllocsPerRun(300, func() {
		br.Reset(val)
		h.ServeHTTP(rw, req)
	})
	t.Logf("PUT /v1/kv allocs/op: %.1f", allocs)
	if rw.status != 204 {
		t.Fatalf("status = %d", rw.status)
	}
	// Budget: key conversion + engine write-group commit state (batch op
	// copies, WAL record staging).
	if !raceEnabled && allocs > 16 {
		t.Fatalf("PUT handler allocs %.1f > budget 16", allocs)
	}
}

func TestDeleteHandlerAllocs(t *testing.T) {
	db, h := allocDB(t)
	if err := db.Put([]byte("allockey"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("DELETE", "/v1/kv/allockey", nil)
	rw := &nullRW{h: make(http.Header)}
	h.ServeHTTP(rw, req)
	allocs := testing.AllocsPerRun(300, func() {
		h.ServeHTTP(rw, req)
	})
	t.Logf("DELETE /v1/kv allocs/op: %.1f", allocs)
	if !raceEnabled && allocs > 16 {
		t.Fatalf("DELETE handler allocs %.1f > budget 16", allocs)
	}
}

// TestClusterGetHandlerAllocs pins the cluster-configured read path,
// which additionally stamps three routing headers and checks ownership.
func TestClusterGetHandlerAllocs(t *testing.T) {
	view, mine, _ := twoNodeView(t)
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	h := New(db, WithCluster(view), WithInternalToken(testToken))
	if err := db.Put([]byte(mine), []byte("alloc-value")); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/v1/kv/"+mine, nil)
	rw := &nullRW{h: make(http.Header)}
	h.ServeHTTP(rw, req)
	allocs := testing.AllocsPerRun(300, func() {
		h.ServeHTTP(rw, req)
	})
	t.Logf("cluster GET /v1/kv allocs/op: %.1f", allocs)
	if rw.status != 200 {
		t.Fatalf("status = %d", rw.status)
	}
	// Budget: non-cluster GET + one []string header-value slice per
	// routing header.
	if !raceEnabled && allocs > 12 {
		t.Fatalf("cluster GET handler allocs %.1f > budget 12", allocs)
	}
}

// TestScanHandlerAllocs keeps the streaming scan's per-request overhead
// bounded (per-entry work must not allocate: entries are appended into
// the pooled response buffer).
func TestScanHandlerAllocs(t *testing.T) {
	db, h := allocDB(t)
	for _, k := range []string{"scan/a", "scan/b", "scan/c", "scan/d"} {
		if err := db.Put([]byte(k), []byte("value-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest("GET", "/v1/scan?start=scan/&n=4", nil)
	rw := &nullRW{h: make(http.Header)}
	h.ServeHTTP(rw, req)
	allocs := testing.AllocsPerRun(300, func() {
		h.ServeHTTP(rw, req)
	})
	t.Logf("GET /v1/scan allocs/op: %.1f", allocs)
	if rw.status != 200 {
		t.Fatalf("status = %d", rw.status)
	}
	// Budget: URL query parsing (net/url map) + engine iterator state;
	// per-entry encoding must stay free.
	if !raceEnabled && allocs > 24 {
		t.Fatalf("scan handler allocs %.1f > budget 24", allocs)
	}
}
