package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"adcache"
	"adcache/internal/api"
	"adcache/internal/cluster"
)

func testServer(t *testing.T) (*httptest.Server, *adcache.DB) {
	t.Helper()
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(db))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db
}

func do(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.String()
}

// envelope decodes a typed error body, failing the test if it is not one.
func envelope(t *testing.T, body string) api.Envelope {
	t.Helper()
	var env api.Envelope
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Code == "" {
		t.Fatalf("not an error envelope: %q (err=%v)", body, err)
	}
	return env
}

func TestPutGetDelete(t *testing.T) {
	srv, _ := testServer(t)
	if resp, _ := do(t, "PUT", srv.URL+"/v1/kv/hello", "world"); resp.StatusCode != 204 {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	resp, body := do(t, "GET", srv.URL+"/v1/kv/hello", "")
	if resp.StatusCode != 200 || body != "world" {
		t.Fatalf("GET = %d %q", resp.StatusCode, body)
	}
	if resp, _ := do(t, "DELETE", srv.URL+"/v1/kv/hello", ""); resp.StatusCode != 204 {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/v1/kv/hello", ""); resp.StatusCode != 404 {
		t.Fatalf("GET after delete = %d", resp.StatusCode)
	}
}

// TestLegacyAliases: the pre-/v1 routes delegate to /v1 for one release,
// self-identifying as deprecated.
func TestLegacyAliases(t *testing.T) {
	srv, _ := testServer(t)
	if resp, _ := do(t, "PUT", srv.URL+"/kv/hello", "world"); resp.StatusCode != 204 {
		t.Fatalf("legacy PUT status %d", resp.StatusCode)
	}
	resp, body := do(t, "GET", srv.URL+"/kv/hello", "")
	if resp.StatusCode != 200 || body != "world" {
		t.Fatalf("legacy GET = %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("legacy route missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/kv/") {
		t.Fatalf("legacy Link header %q", link)
	}
	// New route reads what legacy wrote and carries no Deprecation.
	resp, body = do(t, "GET", srv.URL+"/v1/kv/hello", "")
	if body != "world" || resp.Header.Get("Deprecation") != "" {
		t.Fatalf("v1 GET = %q deprecation=%q", body, resp.Header.Get("Deprecation"))
	}
	if resp, _ := do(t, "POST", srv.URL+"/batch", `[{"op":"put","key":"b","value":"2"}]`); resp.StatusCode != 204 {
		t.Fatalf("legacy batch status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/scan?start=a&n=5", ""); resp.StatusCode != 200 {
		t.Fatalf("legacy scan status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/stats", ""); resp.StatusCode != 200 {
		t.Fatalf("legacy stats status %d", resp.StatusCode)
	}
}

// TestErrorEnvelope drives every client-error path and asserts the typed
// envelope: HTTP status plus distinct machine-readable code.
func TestErrorEnvelope(t *testing.T) {
	srv, _ := testServer(t)
	roDB, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	roSrv := httptest.NewServer(New(roDB, WithReadOnly()))
	t.Cleanup(func() {
		roSrv.Close()
		roDB.Close()
	})
	smallDB, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	smallSrv := httptest.NewServer(New(smallDB, WithMaxBodyBytes(16)))
	t.Cleanup(func() {
		smallSrv.Close()
		smallDB.Close()
	})

	tests := []struct {
		name         string
		base         *httptest.Server
		method, path string
		body         string
		wantStatus   int
		wantCode     string
	}{
		{"missing key", srv, "GET", "/v1/kv/nope", "", 404, api.CodeNotFound},
		{"empty key", srv, "GET", "/v1/kv/", "", 400, api.CodeBadKey},
		{"bad kv method", srv, "PATCH", "/v1/kv/x", "", 405, api.CodeMethodNotAllowed},
		{"scan bad n", srv, "GET", "/v1/scan?start=a&n=zap", "", 400, api.CodeBadLimit},
		{"scan n zero", srv, "GET", "/v1/scan?start=a&n=0", "", 400, api.CodeBadLimit},
		{"scan n negative", srv, "GET", "/v1/scan?start=a&n=-3", "", 400, api.CodeBadLimit},
		{"scan n huge", srv, "GET", "/v1/scan?start=a&n=10001", "", 400, api.CodeBadLimit},
		{"scan inverted range", srv, "GET", "/v1/scan?start=m&end=a", "", 400, api.CodeBadLimit},
		{"scan bad method", srv, "POST", "/v1/scan", "", 405, api.CodeMethodNotAllowed},
		{"batch bad json", srv, "POST", "/v1/batch", "{nope", 400, api.CodeBadBody},
		{"batch unknown op", srv, "POST", "/v1/batch", `[{"op":"zap","key":"d"}]`, 400, api.CodeBadOp},
		{"batch empty key", srv, "POST", "/v1/batch", `[{"op":"put","key":"","value":"v"}]`, 400, api.CodeBadKey},
		{"batch bad method", srv, "GET", "/v1/batch", "", 405, api.CodeMethodNotAllowed},
		{"read-only put", roSrv, "PUT", "/v1/kv/x", "y", 403, api.CodeReadOnly},
		{"read-only delete", roSrv, "DELETE", "/v1/kv/x", "", 403, api.CodeReadOnly},
		{"read-only batch", roSrv, "POST", "/v1/batch", `[{"op":"put","key":"a","value":"1"}]`, 403, api.CodeReadOnly},
		{"oversized body", smallSrv, "PUT", "/v1/kv/big", strings.Repeat("x", 64), 413, api.CodeTooLarge},
		{"shardmap unclustered", srv, "GET", "/v1/shardmap", "", 404, api.CodeNotFound},
		{"migrate without header", srv, "GET", "/v1/migrate?shard=0", "", 403, api.CodeForbidden},
		{"legacy alias envelope", srv, "GET", "/scan?start=a&n=zap", "", 400, api.CodeBadLimit},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := do(t, tc.method, tc.base.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", resp.StatusCode, tc.wantStatus, body)
			}
			if env := envelope(t, body); env.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", env.Code, tc.wantCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Fatalf("error content type %q", ct)
			}
		})
	}
}

func TestScanEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	for i := 0; i < 10; i++ {
		do(t, "PUT", fmt.Sprintf("%s/v1/kv/key%02d", srv.URL, i), fmt.Sprintf("v%d", i))
	}
	resp, body := do(t, "GET", srv.URL+"/v1/scan?start=key03&n=3", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var entries []api.ScanEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Key != "key03" || entries[2].Key != "key05" {
		t.Fatalf("entries = %+v", entries)
	}
	// Bounded variant.
	_, body = do(t, "GET", srv.URL+"/v1/scan?start=key03&end=key05", "")
	json.Unmarshal([]byte(body), &entries)
	if len(entries) != 2 {
		t.Fatalf("bounded entries = %+v", entries)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	ops := `[{"op":"put","key":"a","value":"1"},{"op":"put","key":"b","value":"2"},{"op":"delete","key":"a"}]`
	if resp, body := do(t, "POST", srv.URL+"/v1/batch", ops); resp.StatusCode != 204 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, "GET", srv.URL+"/v1/kv/a", ""); resp.StatusCode != 404 {
		t.Fatal("deleted-in-batch key visible")
	}
	if _, body := do(t, "GET", srv.URL+"/v1/kv/b", ""); body != "2" {
		t.Fatalf("b = %q", body)
	}
	// Unknown op rejected atomically (nothing applied).
	bad := `[{"op":"put","key":"c","value":"3"},{"op":"zap","key":"d"}]`
	if resp, _ := do(t, "POST", srv.URL+"/v1/batch", bad); resp.StatusCode != 400 {
		t.Fatal("bad batch accepted")
	}
	if resp, _ := do(t, "GET", srv.URL+"/v1/kv/c", ""); resp.StatusCode != 404 {
		t.Fatal("partial batch applied")
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, db := testServer(t)
	do(t, "PUT", srv.URL+"/v1/kv/x", "y")
	do(t, "GET", srv.URL+"/v1/kv/x", "")
	resp, body := do(t, "GET", srv.URL+"/v1/stats", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// /v1/stats serves adcache.MetricsSnapshot verbatim.
	var st adcache.MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Strategy != "AdCache" {
		t.Fatalf("strategy = %q", st.Strategy)
	}
	if st.AdCache == nil {
		t.Fatal("adcache controller state missing")
	}
	if st.Engine.LastSeq == 0 {
		t.Fatal("engine metrics missing (LastSeq = 0 after a Put)")
	}
	want := db.Metrics()
	if st.Strategy != want.Strategy || st.AdCache.Params != want.AdCache.Params {
		t.Fatalf("served snapshot diverges from db.Metrics(): %+v vs %+v", st, want)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	do(t, "PUT", srv.URL+"/v1/kv/m", "1")
	do(t, "GET", srv.URL+"/v1/kv/m", "")
	resp, body := do(t, "GET", srv.URL+"/metrics", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE lsm_get_nanos summary",
		`lsm_get_nanos{quantile="0.99"}`,
		"lsm_get_nanos_count",
		"cache_block_hits_total",
		"cache_range_get_hits_total",
		`cache_block_shard_hits_total{shard="0"}`,
		"adcache_range_ratio",
		"adcache_actor_lr",
		"trace_write_errors_total 0",
		`adcache_strategy_info{strategy="AdCache"} 1`,
		`http_requests_total{route="kv"}`,
		`http_shard_read_nanos`,
		`http_shard_write_nanos`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestMetricsDebugVars(t *testing.T) {
	srv, _ := testServer(t)
	do(t, "PUT", srv.URL+"/v1/kv/d", "1")
	resp, body := do(t, "GET", srv.URL+"/debug/vars", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var payload map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, body)
	}
	if _, ok := payload["memstats"]; !ok {
		t.Fatal("standard expvar memstats missing")
	}
	var reg map[string]interface{}
	if err := json.Unmarshal(payload["adcache"], &reg); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg["lsm_user_bytes_total"]; !ok {
		t.Fatalf("registry snapshot missing engine counters: %v", reg)
	}
}

func TestMetricsRequestLatency(t *testing.T) {
	srv, db := testServer(t)
	for i := 0; i < 5; i++ {
		do(t, "GET", srv.URL+"/v1/kv/nope", "")
	}
	snap := db.Registry().Snapshot()
	v, ok := snap[`http_requests_total{route="kv"}`]
	if !ok || v.(int64) != 5 {
		t.Fatalf("kv request counter = %v (ok=%v)", v, ok)
	}
	if _, ok := snap[`http_request_nanos{route="kv"}`]; !ok {
		t.Fatal("kv latency histogram missing")
	}
}

// TestDeprecatedConstructors: Handler and NewHandler remain as thin
// wrappers over New.
func TestDeprecatedConstructors(t *testing.T) {
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := httptest.NewServer(Handler(db))
	defer srv.Close()
	if resp, _ := do(t, "PUT", srv.URL+"/v1/kv/x", "y"); resp.StatusCode != 204 {
		t.Fatalf("Handler wrapper PUT status %d", resp.StatusCode)
	}
	db2, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv2 := httptest.NewServer(NewHandler(db2, Options{ReadOnly: true}))
	defer srv2.Close()
	resp, body := do(t, "PUT", srv2.URL+"/v1/kv/x", "y")
	if resp.StatusCode != 403 || envelope(t, body).Code != api.CodeReadOnly {
		t.Fatalf("NewHandler wrapper read-only = %d %q", resp.StatusCode, body)
	}
}

// twoNodeView builds a 4-slot map split between "self" and "other" and a
// view for self. Returns the view and a key owned by each side.
func twoNodeView(t *testing.T) (*cluster.NodeView, string, string) {
	t.Helper()
	m := &cluster.ShardMap{
		Epoch:  3,
		Shards: 4,
		Nodes: []cluster.Node{
			{ID: "other", Addr: "127.0.0.1:1"},
			{ID: "self", Addr: "127.0.0.1:2"},
		},
		Owner: []string{"self", "self", "other", "other"},
	}
	view, err := cluster.NewNodeView("self", m)
	if err != nil {
		t.Fatal(err)
	}
	var mine, theirs string
	for i := 0; mine == "" || theirs == ""; i++ {
		k := fmt.Sprintf("key%04d", i)
		if s := cluster.ShardOf([]byte(k), 4); s < 2 {
			if mine == "" {
				mine = k
			}
		} else if theirs == "" {
			theirs = k
		}
	}
	return view, mine, theirs
}

// testToken is the migration secret cluster test servers run with.
const testToken = "test-migration-token"

func clusterServer(t *testing.T, view *cluster.NodeView) *httptest.Server {
	srv, _ := clusterServerDB(t, view)
	return srv
}

func clusterServerDB(t *testing.T, view *cluster.NodeView) (*httptest.Server, *adcache.DB) {
	t.Helper()
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(db, WithCluster(view), WithInternalToken(testToken)))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db
}

// TestWrongShard: a cluster-configured node serves its owned slots and
// answers 421 WRONG_SHARD with routing headers for foreign keys.
func TestWrongShard(t *testing.T) {
	view, mine, theirs := twoNodeView(t)
	srv := clusterServer(t, view)

	if resp, _ := do(t, "PUT", srv.URL+"/v1/kv/"+mine, "v"); resp.StatusCode != 204 {
		t.Fatalf("owned PUT status %d", resp.StatusCode)
	}
	resp, body := do(t, "GET", srv.URL+"/v1/kv/"+mine, "")
	if resp.StatusCode != 200 || body != "v" {
		t.Fatalf("owned GET = %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get(api.HeaderEpoch) != "3" || resp.Header.Get(api.HeaderNode) != "self" {
		t.Fatalf("routing headers = epoch %q node %q",
			resp.Header.Get(api.HeaderEpoch), resp.Header.Get(api.HeaderNode))
	}
	if resp.Header.Get(api.HeaderShard) == "" {
		t.Fatal("shard header missing")
	}

	for _, tc := range []struct{ method, body string }{
		{"GET", ""}, {"PUT", "v"}, {"DELETE", ""},
	} {
		resp, body := do(t, tc.method, srv.URL+"/v1/kv/"+theirs, tc.body)
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("%s foreign key status %d, want 421", tc.method, resp.StatusCode)
		}
		env := envelope(t, body)
		if env.Code != api.CodeWrongShard || env.Epoch != 3 {
			t.Fatalf("%s foreign key envelope %+v", tc.method, env)
		}
	}

	// A batch containing any foreign key is rejected whole.
	ops := fmt.Sprintf(`[{"op":"put","key":%q,"value":"1"},{"op":"put","key":%q,"value":"2"}]`, mine, theirs)
	resp, body = do(t, "POST", srv.URL+"/v1/batch", ops)
	if resp.StatusCode != http.StatusMisdirectedRequest || envelope(t, body).Code != api.CodeWrongShard {
		t.Fatalf("mixed batch = %d %q", resp.StatusCode, body)
	}
}

// TestShardMapEndpoint: GET serves the current map; POST accepts only
// strictly newer epochs with the same slot count.
func TestShardMapEndpoint(t *testing.T) {
	view, _, _ := twoNodeView(t)
	srv := clusterServer(t, view)

	resp, body := do(t, "GET", srv.URL+"/v1/shardmap", "")
	if resp.StatusCode != 200 {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	var m cluster.ShardMap
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 3 || m.Shards != 4 {
		t.Fatalf("map = %+v", m)
	}

	next, err := m.WithMove(0, "other")
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := json.Marshal(next)
	if resp, body := do(t, "POST", srv.URL+"/v1/shardmap", string(nb)); resp.StatusCode != 204 {
		t.Fatalf("POST newer map = %d %q", resp.StatusCode, body)
	}
	if view.Epoch() != 4 || view.OwnsShard(0) {
		t.Fatalf("view not advanced: epoch %d owns0=%v", view.Epoch(), view.OwnsShard(0))
	}
	// Stale epoch → 409 STALE_EPOCH.
	stale, _ := json.Marshal(&m)
	resp, body = do(t, "POST", srv.URL+"/v1/shardmap", string(stale))
	if resp.StatusCode != 409 || envelope(t, body).Code != api.CodeStaleEpoch {
		t.Fatalf("stale POST = %d %q", resp.StatusCode, body)
	}
	// Changed slot count → 400 BAD_MAP.
	badMap := next.Clone()
	badMap.Epoch++
	badMap.Shards = 8
	badMap.Owner = append(badMap.Owner, "self", "self", "self", "self")
	bb, _ := json.Marshal(badMap)
	resp, body = do(t, "POST", srv.URL+"/v1/shardmap", string(bb))
	if resp.StatusCode != 400 || envelope(t, body).Code != api.CodeBadMap {
		t.Fatalf("bad-map POST = %d %q", resp.StatusCode, body)
	}
}

// TestShardStats: keyed traffic lands in per-slot histograms served by
// /v1/shardstats.
func TestShardStats(t *testing.T) {
	view, mine, _ := twoNodeView(t)
	srv := clusterServer(t, view)
	for i := 0; i < 7; i++ {
		do(t, "GET", srv.URL+"/v1/kv/"+mine, "")
	}
	do(t, "PUT", srv.URL+"/v1/kv/"+mine, "v")

	resp, body := do(t, "GET", srv.URL+"/v1/shardstats", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st api.ShardStats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Node != "self" || st.Epoch != 3 || len(st.Shards) != 4 {
		t.Fatalf("shardstats = node %q epoch %d %d slots", st.Node, st.Epoch, len(st.Shards))
	}
	slot := cluster.ShardOf([]byte(mine), 4)
	if got := st.Shards[slot].Reads.Count; got != 7 {
		t.Fatalf("slot %d read count = %d, want 7", slot, got)
	}
	if got := st.Shards[slot].Writes.Count; got != 1 {
		t.Fatalf("slot %d write count = %d, want 1", slot, got)
	}
}

// TestShardStatsBudgets: adaptive-strategy nodes report the unified memory
// ledger (memtable, blockcache, rangecache) on /v1/shardstats, so the
// shard manager and operators can see memory moving between components.
func TestShardStatsBudgets(t *testing.T) {
	view, _, _ := twoNodeView(t)
	srv := clusterServer(t, view)

	resp, body := do(t, "GET", srv.URL+"/v1/shardstats", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st api.ShardStats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	seen := map[string]api.BudgetStat{}
	for _, b := range st.Budgets {
		seen[b.Component] = b
	}
	for _, want := range []string{"memtable", "blockcache", "rangecache"} {
		if _, ok := seen[want]; !ok {
			t.Fatalf("budgets missing %q: %+v", want, st.Budgets)
		}
	}
	// Without unified memory the caches split the whole budget and the
	// memtable target is zero (arbitration off).
	if sum := seen["blockcache"].TargetBytes + seen["rangecache"].TargetBytes; sum != 1<<20 {
		t.Fatalf("cache targets sum to %d, want %d", sum, 1<<20)
	}
	if got := seen["memtable"].TargetBytes; got != 0 {
		t.Fatalf("memtable target %d with arbitration off, want 0", got)
	}
}

// TestMigrateEndpoints: export, bulk-load and purge one slot through the
// internal migration surface.
func TestMigrateEndpoints(t *testing.T) {
	view, mine, theirs := twoNodeView(t)
	srv := clusterServer(t, view)

	internal := func(method, path, body string) (*http.Response, string) {
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(api.HeaderInternal, testToken)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	do(t, "PUT", srv.URL+"/v1/kv/"+mine, "owned-value")
	mySlot := cluster.ShardOf([]byte(mine), 4)
	theirSlot := cluster.ShardOf([]byte(theirs), 4)

	// Export the owned slot.
	resp, body := internal("GET", fmt.Sprintf("/v1/migrate?shard=%d", mySlot), "")
	if resp.StatusCode != 200 {
		t.Fatalf("export status %d: %s", resp.StatusCode, body)
	}
	var entries []api.MigrateEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || string(entries[0].Key) != mine || string(entries[0].Value) != "owned-value" {
		t.Fatalf("export = %+v", entries)
	}

	// Bulk-load a foreign slot (this is what the new owner receives).
	load, _ := json.Marshal([]api.MigrateEntry{{Key: []byte(theirs), Value: []byte("migrated")}})
	if resp, body := internal("POST", fmt.Sprintf("/v1/migrate?shard=%d", theirSlot), string(load)); resp.StatusCode != 204 {
		t.Fatalf("bulk-load = %d %q", resp.StatusCode, body)
	}
	// The loaded key is invisible to scans (unowned)...
	_, body = do(t, "GET", srv.URL+"/v1/scan?start=&n=100", "")
	if strings.Contains(body, "migrated") {
		t.Fatalf("unowned key visible in scan: %s", body)
	}
	// ...and not servable (WRONG_SHARD), but present for migration export.
	if resp, _ := do(t, "GET", srv.URL+"/v1/kv/"+theirs, ""); resp.StatusCode != 421 {
		t.Fatalf("unowned GET status %d", resp.StatusCode)
	}

	// Purge refuses owned slots, allows foreign ones.
	resp, body = internal("DELETE", fmt.Sprintf("/v1/migrate?shard=%d", mySlot), "")
	if resp.StatusCode != 409 || envelope(t, body).Code != api.CodeOwnedShard {
		t.Fatalf("purge owned = %d %q", resp.StatusCode, body)
	}
	if resp, body := internal("DELETE", fmt.Sprintf("/v1/migrate?shard=%d", theirSlot), ""); resp.StatusCode != 204 {
		t.Fatalf("purge foreign = %d %q", resp.StatusCode, body)
	}
	resp, body = internal("GET", fmt.Sprintf("/v1/migrate?shard=%d", theirSlot), "")
	if body = strings.TrimSpace(body); body != "[]" && body != "null" {
		t.Fatalf("purged slot still has entries: %s", body)
	}

	// Bad shard parameter.
	resp, body = internal("GET", "/v1/migrate?shard=99", "")
	if resp.StatusCode != 400 || envelope(t, body).Code != api.CodeBadShard {
		t.Fatalf("bad shard = %d %q", resp.StatusCode, body)
	}
}

// TestScanOwnedPagination: scans skip unowned leftovers and still fill
// the requested page from owned keys beyond them.
func TestScanOwnedPagination(t *testing.T) {
	view, _, _ := twoNodeView(t)
	srv := clusterServer(t, view)
	// Load every key (owned or not) through the migration bypass.
	var all []api.MigrateEntry
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("key%04d", i)
		all = append(all, api.MigrateEntry{Key: []byte(k), Value: []byte("v")})
	}
	load, _ := json.Marshal(all)
	req, _ := http.NewRequest("POST", srv.URL+"/v1/migrate?shard=0", strings.NewReader(string(load)))
	req.Header.Set(api.HeaderInternal, testToken)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 204 {
		t.Fatalf("bulk load: %v %v", err, resp)
	}
	_, body := do(t, "GET", srv.URL+"/v1/scan?start=&n=100", "")
	var entries []api.ScanEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || len(entries) >= 40 {
		t.Fatalf("scan returned %d entries, want only the owned subset", len(entries))
	}
	for _, e := range entries {
		if s := cluster.ShardOf([]byte(e.Key), 4); s >= 2 {
			t.Fatalf("scan leaked unowned key %q (slot %d)", e.Key, s)
		}
	}
}

// TestMigrateTokenAuth: the migration surface is gated by the configured
// shared secret, not a well-known header value — wrong tokens and
// token-less nodes reject everything, and a bad token never bypasses
// ownership checks on the data plane.
func TestMigrateTokenAuth(t *testing.T) {
	view, _, theirs := twoNodeView(t)
	srv := clusterServer(t, view)

	withHeader := func(base, method, path, value string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(method, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if value != "" {
			req.Header.Set(api.HeaderInternal, value)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	// The formerly well-known constant value is just a wrong token now.
	for _, tok := range []string{"", "migrate", testToken + "x"} {
		resp, body := withHeader(srv.URL, "GET", "/v1/migrate?shard=0", tok)
		if resp.StatusCode != 403 || envelope(t, body).Code != api.CodeForbidden {
			t.Fatalf("token %q: migrate = %d %q, want 403 FORBIDDEN", tok, resp.StatusCode, body)
		}
	}
	// A wrong token does not bypass ownership on the data plane.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/kv/"+theirs, nil)
	req.Header.Set(api.HeaderInternal, "migrate")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign key with bogus token = %d, want 421", resp.StatusCode)
	}

	// A node with no token configured rejects all migration traffic —
	// there is no default secret.
	view2, _, _ := twoNodeView(t)
	db, err2 := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err2 != nil {
		t.Fatal(err2)
	}
	bare := httptest.NewServer(New(db, WithCluster(view2)))
	t.Cleanup(func() {
		bare.Close()
		db.Close()
	})
	for _, tok := range []string{"", "migrate", testToken} {
		resp, body := withHeader(bare.URL, "GET", "/v1/migrate?shard=0", tok)
		if resp.StatusCode != 403 || envelope(t, body).Code != api.CodeForbidden {
			t.Fatalf("token-less node, token %q: migrate = %d %q, want 403", tok, resp.StatusCode, body)
		}
	}
}

// TestFenceWriteRace: a PUT whose ownership would have passed under the
// old map but whose body completes after a fence must be rejected with
// WRONG_SHARD, never acked — the exact window in which an acked write
// would be lost to the post-move purge. The slow request body used to
// widen this window arbitrarily; now the ownership check and the engine
// write share a critical section that the fence drains.
func TestFenceWriteRace(t *testing.T) {
	view, mine, _ := twoNodeView(t)
	srv, db := clusterServerDB(t, view)

	pr, pw := io.Pipe()
	type outcome struct {
		status int
		code   string
	}
	done := make(chan outcome, 1)
	go func() {
		req, err := http.NewRequest("PUT", srv.URL+"/v1/kv/"+mine, pr)
		if err != nil {
			done <- outcome{0, err.Error()}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- outcome{0, err.Error()}
			return
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		var env api.Envelope
		json.Unmarshal(buf.Bytes(), &env)
		done <- outcome{resp.StatusCode, env.Code}
	}()

	// Get the request in flight with its body still open…
	if _, err := pw.Write([]byte("v")); err != nil {
		t.Fatal(err)
	}
	// …then fence the key's slot away to the other node.
	cur := view.Current()
	next, err := cur.WithMove(cluster.ShardOf([]byte(mine), cur.Shards), "other")
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := json.Marshal(next)
	if resp, body := do(t, "POST", srv.URL+"/v1/shardmap", string(nb)); resp.StatusCode != 204 {
		t.Fatalf("fence POST = %d %q", resp.StatusCode, body)
	}
	// Only now let the body finish. The write's ownership check runs
	// after the full body read, under the post-fence map.
	pw.Write([]byte("2"))
	pw.Close()

	o := <-done
	if o.status != http.StatusMisdirectedRequest || o.code != api.CodeWrongShard {
		t.Fatalf("post-fence PUT = %d %q, want 421 WRONG_SHARD", o.status, o.code)
	}
	// Nothing may have landed in the engine: an unacked write that still
	// commits would be silently dropped by the migration's purge.
	if _, ok, err := db.Get([]byte(mine)); err != nil || ok {
		t.Fatalf("rejected write reached the engine (ok=%v err=%v)", ok, err)
	}
}

func TestConcurrencyLimit(t *testing.T) {
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(db, WithConcurrencyLimit(2)))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	// Requests queue rather than fail: hammer with more concurrency than
	// the limit and expect every response to succeed.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/v1/kv/k%d", srv.URL, i))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 404 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
