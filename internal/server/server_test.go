package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adcache"
)

func testServer(t *testing.T) (*httptest.Server, *adcache.DB) {
	t.Helper()
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(db))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db
}

func do(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.String()
}

func TestPutGetDelete(t *testing.T) {
	srv, _ := testServer(t)
	if resp, _ := do(t, "PUT", srv.URL+"/kv/hello", "world"); resp.StatusCode != 204 {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	resp, body := do(t, "GET", srv.URL+"/kv/hello", "")
	if resp.StatusCode != 200 || body != "world" {
		t.Fatalf("GET = %d %q", resp.StatusCode, body)
	}
	if resp, _ := do(t, "DELETE", srv.URL+"/kv/hello", ""); resp.StatusCode != 204 {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/kv/hello", ""); resp.StatusCode != 404 {
		t.Fatalf("GET after delete = %d", resp.StatusCode)
	}
}

func TestGetMissing(t *testing.T) {
	srv, _ := testServer(t)
	if resp, _ := do(t, "GET", srv.URL+"/kv/nope", ""); resp.StatusCode != 404 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/kv/", ""); resp.StatusCode != 400 {
		t.Fatalf("empty key status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "PATCH", srv.URL+"/kv/x", ""); resp.StatusCode != 405 {
		t.Fatalf("bad method status %d", resp.StatusCode)
	}
}

func TestScanEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	for i := 0; i < 10; i++ {
		do(t, "PUT", fmt.Sprintf("%s/kv/key%02d", srv.URL, i), fmt.Sprintf("v%d", i))
	}
	resp, body := do(t, "GET", srv.URL+"/scan?start=key03&n=3", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var entries []scanEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Key != "key03" || entries[2].Key != "key05" {
		t.Fatalf("entries = %+v", entries)
	}
	// Bounded variant.
	_, body = do(t, "GET", srv.URL+"/scan?start=key03&end=key05", "")
	json.Unmarshal([]byte(body), &entries)
	if len(entries) != 2 {
		t.Fatalf("bounded entries = %+v", entries)
	}
	// Bad n rejected.
	if resp, _ := do(t, "GET", srv.URL+"/scan?start=a&n=zap", ""); resp.StatusCode != 400 {
		t.Fatalf("bad n status %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	ops := `[{"op":"put","key":"a","value":"1"},{"op":"put","key":"b","value":"2"},{"op":"delete","key":"a"}]`
	if resp, body := do(t, "POST", srv.URL+"/batch", ops); resp.StatusCode != 204 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, "GET", srv.URL+"/kv/a", ""); resp.StatusCode != 404 {
		t.Fatal("deleted-in-batch key visible")
	}
	if _, body := do(t, "GET", srv.URL+"/kv/b", ""); body != "2" {
		t.Fatalf("b = %q", body)
	}
	// Unknown op rejected atomically (nothing applied).
	bad := `[{"op":"put","key":"c","value":"3"},{"op":"zap","key":"d"}]`
	if resp, _ := do(t, "POST", srv.URL+"/batch", bad); resp.StatusCode != 400 {
		t.Fatal("bad batch accepted")
	}
	if resp, _ := do(t, "GET", srv.URL+"/kv/c", ""); resp.StatusCode != 404 {
		t.Fatal("partial batch applied")
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	do(t, "PUT", srv.URL+"/kv/x", "y")
	do(t, "GET", srv.URL+"/kv/x", "")
	resp, body := do(t, "GET", srv.URL+"/stats", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Strategy != "AdCache" {
		t.Fatalf("strategy = %q", st.Strategy)
	}
	if st.AdCache == nil {
		t.Fatal("adcache params missing")
	}
}
