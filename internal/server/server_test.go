package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adcache"
)

func testServer(t *testing.T) (*httptest.Server, *adcache.DB) {
	t.Helper()
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(db))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return srv, db
}

func do(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.String()
}

func TestPutGetDelete(t *testing.T) {
	srv, _ := testServer(t)
	if resp, _ := do(t, "PUT", srv.URL+"/kv/hello", "world"); resp.StatusCode != 204 {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	resp, body := do(t, "GET", srv.URL+"/kv/hello", "")
	if resp.StatusCode != 200 || body != "world" {
		t.Fatalf("GET = %d %q", resp.StatusCode, body)
	}
	if resp, _ := do(t, "DELETE", srv.URL+"/kv/hello", ""); resp.StatusCode != 204 {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/kv/hello", ""); resp.StatusCode != 404 {
		t.Fatalf("GET after delete = %d", resp.StatusCode)
	}
}

func TestGetMissing(t *testing.T) {
	srv, _ := testServer(t)
	if resp, _ := do(t, "GET", srv.URL+"/kv/nope", ""); resp.StatusCode != 404 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", srv.URL+"/kv/", ""); resp.StatusCode != 400 {
		t.Fatalf("empty key status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "PATCH", srv.URL+"/kv/x", ""); resp.StatusCode != 405 {
		t.Fatalf("bad method status %d", resp.StatusCode)
	}
}

func TestScanEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	for i := 0; i < 10; i++ {
		do(t, "PUT", fmt.Sprintf("%s/kv/key%02d", srv.URL, i), fmt.Sprintf("v%d", i))
	}
	resp, body := do(t, "GET", srv.URL+"/scan?start=key03&n=3", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var entries []scanEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Key != "key03" || entries[2].Key != "key05" {
		t.Fatalf("entries = %+v", entries)
	}
	// Bounded variant.
	_, body = do(t, "GET", srv.URL+"/scan?start=key03&end=key05", "")
	json.Unmarshal([]byte(body), &entries)
	if len(entries) != 2 {
		t.Fatalf("bounded entries = %+v", entries)
	}
	// Bad n rejected.
	if resp, _ := do(t, "GET", srv.URL+"/scan?start=a&n=zap", ""); resp.StatusCode != 400 {
		t.Fatalf("bad n status %d", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	ops := `[{"op":"put","key":"a","value":"1"},{"op":"put","key":"b","value":"2"},{"op":"delete","key":"a"}]`
	if resp, body := do(t, "POST", srv.URL+"/batch", ops); resp.StatusCode != 204 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, "GET", srv.URL+"/kv/a", ""); resp.StatusCode != 404 {
		t.Fatal("deleted-in-batch key visible")
	}
	if _, body := do(t, "GET", srv.URL+"/kv/b", ""); body != "2" {
		t.Fatalf("b = %q", body)
	}
	// Unknown op rejected atomically (nothing applied).
	bad := `[{"op":"put","key":"c","value":"3"},{"op":"zap","key":"d"}]`
	if resp, _ := do(t, "POST", srv.URL+"/batch", bad); resp.StatusCode != 400 {
		t.Fatal("bad batch accepted")
	}
	if resp, _ := do(t, "GET", srv.URL+"/kv/c", ""); resp.StatusCode != 404 {
		t.Fatal("partial batch applied")
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, db := testServer(t)
	do(t, "PUT", srv.URL+"/kv/x", "y")
	do(t, "GET", srv.URL+"/kv/x", "")
	resp, body := do(t, "GET", srv.URL+"/stats", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// /stats serves adcache.MetricsSnapshot verbatim.
	var st adcache.MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Strategy != "AdCache" {
		t.Fatalf("strategy = %q", st.Strategy)
	}
	if st.AdCache == nil {
		t.Fatal("adcache controller state missing")
	}
	if st.Engine.LastSeq == 0 {
		t.Fatal("engine metrics missing (LastSeq = 0 after a Put)")
	}
	want := db.Metrics()
	if st.Strategy != want.Strategy || st.AdCache.Params != want.AdCache.Params {
		t.Fatalf("served snapshot diverges from db.Metrics(): %+v vs %+v", st, want)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	do(t, "PUT", srv.URL+"/kv/m", "1")
	do(t, "GET", srv.URL+"/kv/m", "")
	resp, body := do(t, "GET", srv.URL+"/metrics", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE lsm_get_nanos summary",
		`lsm_get_nanos{quantile="0.99"}`,
		"lsm_get_nanos_count",
		"cache_block_hits_total",
		"cache_range_get_hits_total",
		`cache_block_shard_hits_total{shard="0"}`,
		"adcache_range_ratio",
		"adcache_actor_lr",
		"trace_write_errors_total 0",
		`adcache_strategy_info{strategy="AdCache"} 1`,
		`http_requests_total{route="kv"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestMetricsDebugVars(t *testing.T) {
	srv, _ := testServer(t)
	do(t, "PUT", srv.URL+"/kv/d", "1")
	resp, body := do(t, "GET", srv.URL+"/debug/vars", "")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var payload map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, body)
	}
	if _, ok := payload["memstats"]; !ok {
		t.Fatal("standard expvar memstats missing")
	}
	var reg map[string]interface{}
	if err := json.Unmarshal(payload["adcache"], &reg); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg["lsm_user_bytes_total"]; !ok {
		t.Fatalf("registry snapshot missing engine counters: %v", reg)
	}
}

func TestMetricsRequestLatency(t *testing.T) {
	srv, db := testServer(t)
	for i := 0; i < 5; i++ {
		do(t, "GET", srv.URL+"/kv/nope", "")
	}
	snap := db.Registry().Snapshot()
	v, ok := snap[`http_requests_total{route="kv"}`]
	if !ok || v.(int64) != 5 {
		t.Fatalf("kv request counter = %v (ok=%v)", v, ok)
	}
	if _, ok := snap[`http_request_nanos{route="kv"}`]; !ok {
		t.Fatal("kv latency histogram missing")
	}
}

func TestReadOnly(t *testing.T) {
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(db, Options{ReadOnly: true}))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	for _, tc := range []struct{ method, path, body string }{
		{"PUT", "/kv/x", "y"},
		{"DELETE", "/kv/x", ""},
		{"POST", "/batch", `[{"op":"put","key":"a","value":"1"}]`},
	} {
		if resp, _ := do(t, tc.method, srv.URL+tc.path, tc.body); resp.StatusCode != 403 {
			t.Errorf("%s %s in read-only mode: status %d, want 403", tc.method, tc.path, resp.StatusCode)
		}
	}
	// Reads and observability stay up.
	if resp, _ := do(t, "GET", srv.URL+"/kv/x", ""); resp.StatusCode != 404 {
		t.Errorf("read-only GET status %d", resp.StatusCode)
	}
	for _, path := range []string{"/scan?start=a&n=2", "/stats", "/metrics", "/debug/vars"} {
		if resp, _ := do(t, "GET", srv.URL+path, ""); resp.StatusCode != 200 {
			t.Errorf("read-only GET %s status %d", path, resp.StatusCode)
		}
	}
}

func TestMaxBodyBytes(t *testing.T) {
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(db, Options{MaxBodyBytes: 16}))
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	if resp, _ := do(t, "PUT", srv.URL+"/kv/big", strings.Repeat("x", 64)); resp.StatusCode != 400 {
		t.Fatalf("oversized body status %d, want 400", resp.StatusCode)
	}
	if resp, _ := do(t, "PUT", srv.URL+"/kv/ok", "small"); resp.StatusCode != 204 {
		t.Fatalf("small body status %d", resp.StatusCode)
	}
}
