//go:build !race

package server

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops puts at random, so strict steady-state
// allocation bounds on pool-backed paths do not hold; the alloc-regression
// tests still exercise the paths but relax their numeric assertions.
const raceEnabled = false
