package server

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"adcache/internal/api"
	"adcache/internal/api/wire"
	"adcache/internal/cluster"
)

// Cross-request write coalescing (WithWriteCoalescing).
//
// A write request — a single-op PUT/DELETE or a whole /v1/batch body —
// normally pays one flight-RLock acquisition and one engine Apply — and
// therefore one WAL group commit — per request. Under high connection
// counts those requests arrive concurrently, so a dedicated coalescer
// goroutine groups them: the first request opens a group, the group
// collects queued requests for up to the configured window (or until the
// op budget fills), and the whole group becomes ONE engine Apply under
// ONE flight-RLock hold. The engine's write-group commit then folds the
// group into a single WAL append + fsync, amortizing both lock traffic
// and fsync latency across connections — the cross-request analogue of
// the engine-level group commit. Batch bodies stay atomic: all of a
// request's ops enter the same engine batch, so the group apply commits
// each batch all-or-nothing exactly as the direct path does.
//
// Fence/migration semantics are preserved exactly:
//
//   - Each request's ownership is re-checked by the coalescer *inside*
//     the flight-RLock critical section, against the map current at
//     apply time. A request queued before a fence but applied after it
//     sees the new map and is answered WRONG_SHARD instead of being
//     written into a slot this node no longer owns. A batch is rejected
//     whole if any of its ops' slots moved, mirroring the direct path.
//   - A request is acked (204) only after its group's Apply has returned
//     while the RLock was held. The fence takes the write lock, so by the
//     time the fence's 204 releases the shard manager to copy, every
//     coalesced write acked under the old map is durably committed and
//     included in the copy. TestFenceWriteRaceCoalesced pins this.
//
// Durability is unchanged: Apply returns only after the WAL commit, and
// every request in the group is acked strictly after that return.

// coalOp is one queued write request — a single-op write carries one
// entry, a batch body one entry per op — plus its result slots. The
// parallel slices keep their capacity across pool round-trips; the done
// channel is 1-buffered and reused.
type coalOp struct {
	kinds    []byte // wire.OpPut or wire.OpDelete, per entry
	keys     [][]byte
	values   [][]byte
	shards   []int
	internal bool // authenticated shard-manager traffic bypasses ownership

	wrongShard bool
	shard      int // offending slot when wrongShard
	owner      string
	err        error
	done       chan struct{}
}

// reset clears op for a new request, keeping slice capacity.
func (op *coalOp) reset(internal bool) {
	op.kinds = op.kinds[:0]
	op.keys = op.keys[:0]
	op.values = op.values[:0]
	op.shards = op.shards[:0]
	op.internal = internal
	op.wrongShard, op.shard, op.owner, op.err = false, 0, "", nil
}

// add stages one entry on the request.
func (op *coalOp) add(kind byte, key, value []byte, shard int) {
	op.kinds = append(op.kinds, kind)
	op.keys = append(op.keys, key)
	op.values = append(op.values, value)
	op.shards = append(op.shards, shard)
}

// release drops the body aliases (keys and values point into pooled
// request buffers) so the pooled op cannot pin them.
func (op *coalOp) release() {
	for i := range op.keys {
		op.keys[i], op.values[i] = nil, nil
	}
	op.owner, op.err = "", nil
}

var coalOpPool = sync.Pool{New: func() any { return &coalOp{done: make(chan struct{}, 1)} }}

// coalescer carries the queue and the bounds of one server's write
// coalescing. maxOps bounds the total entries staged per group, not the
// request count, so batch bodies fill a group proportionally faster.
type coalescer struct {
	ch     chan *coalOp
	window time.Duration
	maxOps int
}

// startCoalescer resolves the configured bounds and launches the
// coalescing goroutine. The goroutine lives as long as the server (the
// server has no Close; one parked goroutine per coalescing server is the
// accepted cost).
func (s *server) startCoalescer() {
	maxOps := s.cfg.coalMaxOps
	if maxOps <= 0 {
		maxOps = 128
	}
	window := s.cfg.coalWindow
	if window < 0 {
		window = 0
	}
	s.coal = &coalescer{ch: make(chan *coalOp, 4*maxOps), window: window, maxOps: maxOps}
	s.coalGroups = s.reg.Counter("http_coalesce_groups_total",
		"Coalesced write groups applied.")
	s.coalOps = s.reg.Counter("http_coalesced_ops_total",
		"Write ops routed through the coalescer.")
	s.coalSize = s.reg.Histogram("http_coalesce_group_size",
		"Ops per coalesced write group.")
	go s.runCoalescer()
}

// coalesceWrite queues one single-op write on the coalescer and blocks
// until its group commits, then writes the op's individual outcome.
func (s *server) coalesceWrite(w http.ResponseWriter, key, value []byte, shard int, start time.Time, kind byte, internal bool) {
	op := coalOpPool.Get().(*coalOp)
	op.reset(internal)
	op.add(kind, key, value, shard)
	s.coalesceApply(w, op, start)
}

// coalesceApply queues a staged request, blocks until its group commits,
// writes the request's individual outcome, and recycles op. Keys and
// values may alias the request's pooled body buffer: the handler blocks
// here until the group is done, so the buffer cannot be recycled out
// from under the coalescer.
func (s *server) coalesceApply(w http.ResponseWriter, op *coalOp, start time.Time) {
	s.coal.ch <- op
	<-op.done
	switch {
	case op.wrongShard:
		s.writeErr(w, http.StatusMisdirectedRequest, api.CodeWrongShard,
			fmt.Sprintf("shard %d owned by node %q", op.shard, op.owner))
	case op.err != nil:
		s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, op.err.Error())
	default:
		for i, sh := range op.shards {
			seen := false
			for _, prev := range op.shards[:i] {
				if prev == sh {
					seen = true
					break
				}
			}
			if !seen {
				s.observeShard(sh, true, start)
			}
		}
		w.WriteHeader(http.StatusNoContent)
	}
	op.release()
	coalOpPool.Put(op)
}

// runCoalescer is the group-forming loop: take one request, wait up to
// window for more (reusing one timer), top the group up with whatever is
// already queued, and apply. n tracks staged entries against maxOps.
func (s *server) runCoalescer() {
	c := s.coal
	group := make([]*coalOp, 0, c.maxOps)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for op := range c.ch {
		group = append(group[:0], op)
		n := len(op.kinds)
		if c.window > 0 {
			timer.Reset(c.window)
			fired := false
			for !fired && n < c.maxOps {
				select {
				case op2 := <-c.ch:
					group = append(group, op2)
					n += len(op2.kinds)
				case <-timer.C:
					fired = true
				}
			}
			if !fired && !timer.Stop() {
				<-timer.C
			}
		}
	drain:
		for n < c.maxOps {
			select {
			case op2 := <-c.ch:
				group = append(group, op2)
				n += len(op2.kinds)
			default:
				break drain
			}
		}
		s.applyGroup(group)
	}
}

// applyGroup commits one group: re-check each request's ownership and
// apply the survivors as one engine batch, all inside one flight-RLock
// hold. A request with any moved slot is rejected whole — none of its
// entries reach the engine batch — so batch atomicity matches the
// direct path.
func (s *server) applyGroup(group []*coalOp) {
	s.flight.RLock()
	var m *cluster.ShardMap
	if s.cfg.src != nil {
		m = s.cfg.src.Current()
	}
	b := getBatch()
	staged := 0
	for _, op := range group {
		if m != nil && !op.internal {
			for _, sh := range op.shards {
				if owner := m.Owner[sh]; owner != s.cfg.nodeID {
					op.wrongShard, op.shard, op.owner = true, sh, owner
					break
				}
			}
			if op.wrongShard {
				continue
			}
		}
		for i, kind := range op.kinds {
			if kind == wire.OpPut {
				b.Put(op.keys[i], op.values[i])
			} else {
				b.Delete(op.keys[i])
			}
		}
		staged += len(op.kinds)
	}
	var err error
	if b.Len() > 0 {
		err = s.db.Apply(b)
	}
	s.flight.RUnlock()
	batchPool.Put(b)
	s.coalGroups.Inc()
	s.coalOps.Add(int64(staged))
	s.coalSize.Observe(int64(staged))
	for _, op := range group {
		if !op.wrongShard {
			op.err = err
		}
		op.done <- struct{}{}
	}
}
