package server

import (
	"net/http"
	"sync"
	"time"
	"unicode/utf8"
)

// The service hot path avoids per-request allocation: every request is
// wrapped in a pooled timedWriter carrying its arrival time plus two
// reusable scratch buffers (request-body bytes and response encoding),
// per-route metrics are precomputed arrays indexed by a route enum, and
// JSON envelopes/scan entries are appended by hand instead of through
// encoding/json. Regression tests in alloc_test.go pin the resulting
// budgets.

// keepScratchBytes bounds what a pooled scratch buffer may retain: one
// giant body or scan response must not pin megabytes in the pool.
const keepScratchBytes = 1 << 20

// scanFlushBytes is the streaming-scan chunk size: the response buffer is
// written (and flushed) every time it crosses this mark, so a large scan
// reaches the client incrementally instead of materializing server-side.
const scanFlushBytes = 32 << 10

// timedWriter wraps every request's ResponseWriter with its arrival time
// (taken before the concurrency-limit wait, so per-shard histograms see
// queueing) and the request's reusable scratch buffers.
type timedWriter struct {
	http.ResponseWriter
	start time.Time
	body  []byte // request-body scratch (readBody)
	out   []byte // response-encoding scratch (writeErr, scans)
}

// Flush forwards to the underlying writer so streaming scans can push
// chunks through the wrapper.
func (t *timedWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (t *timedWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

var twPool = sync.Pool{New: func() any { return new(timedWriter) }}

// reqStart returns the request's arrival time when instrument wrapped the
// writer, else now.
func reqStart(w http.ResponseWriter) time.Time {
	if tw, ok := w.(*timedWriter); ok {
		return tw.start
	}
	return time.Now()
}

// scratch returns the request's response-encoding buffer (length zero),
// or nil capacity when w is not instrument-wrapped.
func scratch(w http.ResponseWriter) (*timedWriter, []byte) {
	if tw, ok := w.(*timedWriter); ok {
		return tw, tw.out[:0]
	}
	return nil, nil
}

const hexDigits = "0123456789abcdef"

// appendJSONBytes appends s as a JSON string literal, escaping exactly
// what validity requires (quotes, backslashes, control bytes) and
// replacing invalid UTF-8 with U+FFFD, matching encoding/json semantics
// minus its HTML escaping.
func appendJSONBytes(dst []byte, s []byte) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' {
				dst = append(dst, c)
				i++
				continue
			}
			dst = appendEscaped(dst, c)
			i++
			continue
		}
		r, size := utf8.DecodeRune(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}

// appendJSONString is appendJSONBytes for a string without converting it.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' {
				dst = append(dst, c)
				i++
				continue
			}
			dst = appendEscaped(dst, c)
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			continue
		}
		dst = append(dst, s[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}

// appendEscaped writes the escape sequence for one ASCII byte that cannot
// appear raw inside a JSON string.
func appendEscaped(dst []byte, c byte) []byte {
	switch c {
	case '"':
		return append(dst, '\\', '"')
	case '\\':
		return append(dst, '\\', '\\')
	case '\n':
		return append(dst, '\\', 'n')
	case '\r':
		return append(dst, '\\', 'r')
	case '\t':
		return append(dst, '\\', 't')
	default:
		return append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
	}
}
