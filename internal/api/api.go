// Package api pins down the versioned /v1 wire format shared by the
// server, the Go client, and the shard manager: JSON request/response
// shapes, the typed error envelope, error codes, and routing headers.
// API.md documents the same surface for non-Go consumers; this package is
// the single in-tree source of truth so the two ends cannot drift.
package api

import "adcache/internal/metrics"

// Routing and control headers. Every /v1 response from a cluster-
// configured node carries HeaderNode, HeaderEpoch and (for keyed
// operations) HeaderShard, so clients can passively learn about newer map
// epochs without an extra round trip.
const (
	// HeaderEpoch carries a shard-map epoch: the client's view on
	// requests, the node's current epoch on responses.
	HeaderEpoch = "X-Adcache-Epoch"
	// HeaderShard is the hash slot the server computed for the request key.
	HeaderShard = "X-Adcache-Shard"
	// HeaderNode is the responding node's ID.
	HeaderNode = "X-Adcache-Node"
	// HeaderInternal authenticates control-plane traffic (shard
	// migration). Its value is the deployment's shared migration token
	// (adcached -cluster-token / server.WithInternalToken), never a
	// well-known constant: requests carrying the correct token may use
	// /v1/migrate and bypass ownership checks, and a node with no token
	// configured rejects all migration traffic.
	HeaderInternal = "X-Adcache-Internal"
)

// Error codes carried in the Envelope. Clients dispatch on Code, never on
// the human-readable message.
const (
	// CodeWrongShard: the key's slot is not owned by this node under the
	// node's current map (HTTP 421). Retryable after a map refresh; the
	// envelope's Epoch tells the client how stale it is.
	CodeWrongShard = "WRONG_SHARD"
	// CodeNotFound: key absent (HTTP 404).
	CodeNotFound = "NOT_FOUND"
	// CodeBadKey: empty or malformed key (HTTP 400).
	CodeBadKey = "BAD_KEY"
	// CodeBadLimit: unparseable or out-of-range n/limit parameter (HTTP 400).
	CodeBadLimit = "BAD_LIMIT"
	// CodeBadBody: unreadable or unparseable request body (HTTP 400).
	CodeBadBody = "BAD_BODY"
	// CodeBadOp: unknown operation inside a batch (HTTP 400).
	CodeBadOp = "BAD_OP"
	// CodeBadShard: unparseable or out-of-range shard parameter (HTTP 400).
	CodeBadShard = "BAD_SHARD"
	// CodeBadMap: a /v1/shardmap POST that fails validation (HTTP 400).
	CodeBadMap = "BAD_MAP"
	// CodeStaleEpoch: a /v1/shardmap POST older than the node's map (HTTP 409).
	CodeStaleEpoch = "STALE_EPOCH"
	// CodeTooLarge: request body over the node's cap (HTTP 413).
	CodeTooLarge = "TOO_LARGE"
	// CodeMethodNotAllowed: wrong HTTP method for the route (HTTP 405).
	CodeMethodNotAllowed = "METHOD_NOT_ALLOWED"
	// CodeReadOnly: mutating request on a read-only node (HTTP 403).
	CodeReadOnly = "READ_ONLY"
	// CodeForbidden: a control-plane route hit without a valid
	// HeaderInternal migration token (HTTP 403).
	CodeForbidden = "FORBIDDEN"
	// CodeOwnedShard: refusing to purge a shard this node still owns (HTTP 409).
	CodeOwnedShard = "OWNED_SHARD"
	// CodeInternal: engine-side failure (HTTP 500). Not retryable blindly.
	CodeInternal = "INTERNAL"
)

// Envelope is the typed error body every non-2xx /v1 response carries.
type Envelope struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Epoch is the responding node's current shard-map epoch (0 when the
	// node is not cluster-configured).
	Epoch uint64 `json:"epoch,omitempty"`
}

// Error makes an Envelope usable as a Go error (the client returns them
// verbatim for non-retryable codes).
func (e *Envelope) Error() string {
	return e.Code + ": " + e.Message
}

// ScanEntry is one /v1/scan result. Keys and values are JSON strings —
// the scan surface assumes UTF-8-clean data; binary-safe bulk transfer
// goes through MigrateEntry.
type ScanEntry struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// BatchOp is one operation in a /v1/batch request.
type BatchOp struct {
	Op    string `json:"op"` // "put" or "delete"
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// MigrateEntry is one key-value pair in shard-migration transfer. []byte
// fields marshal as base64, making the migration path binary-safe.
type MigrateEntry struct {
	Key   []byte `json:"k"`
	Value []byte `json:"v"`
}

// ShardStat is one slot's cumulative read/write latency histograms as
// reported by /v1/shardstats. Cumulative — the shard manager diffs
// successive polls to get per-window load and tail latency.
type ShardStat struct {
	Shard  int                       `json:"shard"`
	Reads  metrics.HistogramSnapshot `json:"reads"`
	Writes metrics.HistogramSnapshot `json:"writes"`
}

// BudgetStat is one component of the node's unified memory ledger as
// reported by /v1/shardstats: the arbiter's byte target for the component
// and the bytes it actually holds. Components are "memtable",
// "blockcache" and "rangecache".
type BudgetStat struct {
	Component   string `json:"component"`
	TargetBytes int64  `json:"target_bytes"`
	ActualBytes int64  `json:"actual_bytes"`
}

// Health is the /v1/health response. Liveness (the process answers at
// all) is the 200 on `?probe=live`; readiness is the HTTP status of the
// plain GET — 200 when the node should receive traffic, 503 when it is
// draining for shutdown or its engine has degraded to read-only.
type Health struct {
	// Status is "ok" when ready, else "draining" or "degraded".
	Status string `json:"status"`
	// BgState mirrors the engine error-handler state: "healthy",
	// "retrying" (background errors being retried; still ready) or
	// "read-only" (writes fail fast until an operator resumes).
	BgState string `json:"bg_state"`
	// Draining is true once graceful shutdown has begun.
	Draining bool `json:"draining,omitempty"`
	// Node and Epoch identify the responder (cluster mode only).
	Node  string `json:"node,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// ShardStats is the /v1/shardstats response.
type ShardStats struct {
	Node   string      `json:"node"`
	Epoch  uint64      `json:"epoch"`
	Shards []ShardStat `json:"shards"`
	// Budgets is the node's unified memory ledger (present when the node
	// runs the adaptive strategy), so the shard manager and operators can
	// watch memory move between the write and read sides.
	Budgets []BudgetStat `json:"budgets,omitempty"`
}
