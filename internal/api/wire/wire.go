// Package wire implements the length-prefixed binary codec behind the
// /v1 data plane's application/x-adcache-bin content type — the fast
// alternative to the JSON wire format (which remains the default; see
// API.md § "Binary wire codec").
//
// Two framings share the same primitives:
//
//   - A batch body carries a version byte, a uvarint op count, then that
//     many ops: [kind:1][klen uvarint][key]([vlen uvarint][value] for
//     puts). It is decoded from a fully-buffered request body, so every
//     decoded key/value is a zero-copy sub-slice of the body.
//
//   - An entry stream (scan responses) carries a version byte then tagged
//     frames: 0x01 [klen uvarint][key][vlen uvarint][value] per entry and
//     a 0x00 terminator. The terminator is load-bearing: a stream that
//     ends without it was truncated mid-flight (the server hit an engine
//     error after committing to a 200), and the decoder reports
//     ErrTruncated instead of silently returning a prefix.
//
// Keys and values are raw bytes — no base64, no UTF-8 assumption, no
// per-op string conversion anywhere on the path. Encoders append into
// caller-supplied buffers (see GetBuf/PutBuf for the shared pool);
// decoders never allocate beyond their reusable scratch.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ContentType negotiates the binary codec: a /v1/batch request with this
// Content-Type carries a binary batch body, and a /v1/scan request with
// this Accept value receives a binary entry stream.
const ContentType = "application/x-adcache-bin"

// Version is the codec version carried as the first byte of every batch
// body and entry stream. Decoders reject other versions, so the framing
// can evolve without silent misparses.
const Version = 1

// Op kinds inside a batch.
const (
	// OpPut writes key=value.
	OpPut byte = 0x01
	// OpDelete removes key (no value frame follows).
	OpDelete byte = 0x02
)

// Entry-stream frame tags.
const (
	tagEnd   byte = 0x00
	tagEntry byte = 0x01
)

// MaxEntryBytes bounds a single decoded key or value (64 MiB, matching
// the server's default body cap). It exists so a corrupt or hostile
// length prefix cannot make a decoder allocate unbounded memory.
const MaxEntryBytes = 64 << 20

// Codec errors. Decoders wrap them with position context; use errors.Is.
var (
	// ErrVersion: the first byte is not a supported codec version.
	ErrVersion = errors.New("wire: unsupported codec version")
	// ErrCorrupt: framing is malformed (bad tag, bad kind, overlong
	// varint, or a length prefix past the buffer end).
	ErrCorrupt = errors.New("wire: corrupt framing")
	// ErrTruncated: an entry stream ended without its terminator frame —
	// the producer died mid-stream and the prefix must not be trusted as
	// the complete result.
	ErrTruncated = errors.New("wire: stream truncated before end frame")
	// ErrTooLarge: a length prefix exceeds MaxEntryBytes.
	ErrTooLarge = errors.New("wire: entry exceeds size bound")
)

// --- Pooled encode buffers ---

// bufPool recycles encode buffers across requests. Buffers that grew
// beyond keepBufBytes are dropped on Put so one giant scan cannot pin
// memory forever.
const keepBufBytes = 1 << 20

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf returns a pooled byte slice of length zero. Pass it back with
// PutBuf when the encoded frame has been flushed.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf recycles a buffer obtained from GetBuf.
func PutBuf(b *[]byte) {
	if cap(*b) > keepBufBytes {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// --- Batch encoding ---

// AppendBatchHeader starts a binary batch body for n ops.
func AppendBatchHeader(dst []byte, n int) []byte {
	dst = append(dst, Version)
	return binary.AppendUvarint(dst, uint64(n))
}

// AppendPut appends one put op.
func AppendPut(dst, key, value []byte) []byte {
	dst = append(dst, OpPut)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(value)))
	return append(dst, value...)
}

// AppendDelete appends one delete op.
func AppendDelete(dst, key []byte) []byte {
	dst = append(dst, OpDelete)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	return append(dst, key...)
}

// BatchDecoder iterates a fully-buffered binary batch body. Decoded keys
// and values alias the input buffer — valid as long as the buffer is.
type BatchDecoder struct {
	buf  []byte
	rest []byte
	n    int // ops remaining
}

// Init parses the header and primes the decoder. The decoder retains buf.
func (d *BatchDecoder) Init(buf []byte) error {
	d.buf, d.rest, d.n = buf, nil, 0
	if len(buf) == 0 {
		return fmt.Errorf("%w: empty body", ErrCorrupt)
	}
	if buf[0] != Version {
		return fmt.Errorf("%w: got %d, want %d", ErrVersion, buf[0], Version)
	}
	n, sz := binary.Uvarint(buf[1:])
	if sz <= 0 {
		return fmt.Errorf("%w: bad op count", ErrCorrupt)
	}
	// Every op costs at least 2 bytes on the wire, so a count beyond
	// len(buf)/2 is provably a lie — reject before any caller trusts it
	// as an allocation hint.
	if n > uint64(len(buf)/2) {
		return fmt.Errorf("%w: op count %d exceeds body", ErrCorrupt, n)
	}
	d.rest = buf[1+sz:]
	d.n = int(n)
	return nil
}

// Remaining reports how many ops have not been decoded yet.
func (d *BatchDecoder) Remaining() int { return d.n }

// Next decodes the next op. It returns io.EOF after the declared op count
// has been consumed (trailing bytes beyond it are ErrCorrupt).
func (d *BatchDecoder) Next() (kind byte, key, value []byte, err error) {
	if d.n == 0 {
		if len(d.rest) != 0 {
			return 0, nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.rest))
		}
		return 0, nil, nil, io.EOF
	}
	d.n--
	if len(d.rest) == 0 {
		return 0, nil, nil, fmt.Errorf("%w: body ends before declared ops", ErrCorrupt)
	}
	kind, d.rest = d.rest[0], d.rest[1:]
	if kind != OpPut && kind != OpDelete {
		return 0, nil, nil, fmt.Errorf("%w: unknown op kind %#x", ErrCorrupt, kind)
	}
	if key, err = d.field(); err != nil {
		return 0, nil, nil, err
	}
	if kind == OpPut {
		if value, err = d.field(); err != nil {
			return 0, nil, nil, err
		}
	}
	return kind, key, value, nil
}

// field slices one uvarint-prefixed field out of the remaining body.
func (d *BatchDecoder) field() ([]byte, error) {
	n, sz := binary.Uvarint(d.rest)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad length prefix", ErrCorrupt)
	}
	if n > MaxEntryBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if uint64(len(d.rest)-sz) < n {
		return nil, fmt.Errorf("%w: length %d past body end", ErrCorrupt, n)
	}
	f := d.rest[sz : sz+int(n)]
	d.rest = d.rest[sz+int(n):]
	return f, nil
}

// --- Entry streams ---

// AppendStreamHeader starts an entry stream.
func AppendStreamHeader(dst []byte) []byte { return append(dst, Version) }

// AppendEntry appends one key/value entry frame.
func AppendEntry(dst, key, value []byte) []byte {
	dst = append(dst, tagEntry)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(value)))
	return append(dst, value...)
}

// AppendStreamEnd appends the terminator frame that marks the stream
// complete. A consumer that never sees it must treat the stream as
// truncated.
func AppendStreamEnd(dst []byte) []byte { return append(dst, tagEnd) }

// StreamDecoder incrementally decodes an entry stream from a reader —
// the consuming half of a streaming scan: entries become available as
// chunks arrive, without buffering the whole response. Key/value slices
// returned by Next are reused scratch, valid until the following Next.
type StreamDecoder struct {
	br      *bufio.Reader
	started bool
	key     []byte
	value   []byte
}

// Reset points the decoder at a new stream, reusing its buffers.
func (d *StreamDecoder) Reset(r io.Reader) {
	if d.br == nil {
		d.br = bufio.NewReaderSize(r, 32<<10)
	} else {
		d.br.Reset(r)
	}
	d.started = false
}

// Next decodes the next entry. It returns io.EOF at the terminator frame
// and ErrTruncated if the underlying stream ends anywhere else.
func (d *StreamDecoder) Next() (key, value []byte, err error) {
	if d.br == nil {
		return nil, nil, fmt.Errorf("%w: decoder not Reset", ErrCorrupt)
	}
	if !d.started {
		v, err := d.br.ReadByte()
		if err != nil {
			return nil, nil, truncated(err)
		}
		if v != Version {
			return nil, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
		}
		d.started = true
	}
	tag, err := d.br.ReadByte()
	if err != nil {
		return nil, nil, truncated(err)
	}
	switch tag {
	case tagEnd:
		return nil, nil, io.EOF
	case tagEntry:
		if d.key, err = d.readField(d.key); err != nil {
			return nil, nil, err
		}
		if d.value, err = d.readField(d.value); err != nil {
			return nil, nil, err
		}
		return d.key, d.value, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown frame tag %#x", ErrCorrupt, tag)
	}
}

// readField reads one uvarint-prefixed field into scratch (grown as
// needed and reused across calls).
func (d *StreamDecoder) readField(scratch []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		return scratch, truncated(err)
	}
	if n > MaxEntryBytes {
		return scratch, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if uint64(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(d.br, scratch); err != nil {
		return scratch, truncated(err)
	}
	return scratch, nil
}

// truncated classifies reader errors: an EOF anywhere before the end
// frame is a truncation, everything else passes through.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}
