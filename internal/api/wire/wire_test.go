package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestBatchRoundTrip: encode a mixed batch, decode it back identically,
// including empty values and binary-unsafe bytes JSON could not carry.
func TestBatchRoundTrip(t *testing.T) {
	type op struct {
		kind       byte
		key, value []byte
	}
	ops := []op{
		{OpPut, []byte("k1"), []byte("v1")},
		{OpDelete, []byte("k2"), nil},
		{OpPut, []byte{0x00, 0xff, '"', '\\'}, []byte{0xfe, 0x00}},
		{OpPut, []byte("empty-value"), []byte{}},
		{OpPut, bytes.Repeat([]byte("K"), 300), bytes.Repeat([]byte{0x7f}, 5000)},
	}
	buf := AppendBatchHeader(nil, len(ops))
	for _, o := range ops {
		if o.kind == OpPut {
			buf = AppendPut(buf, o.key, o.value)
		} else {
			buf = AppendDelete(buf, o.key)
		}
	}

	var d BatchDecoder
	if err := d.Init(buf); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != len(ops) {
		t.Fatalf("Remaining = %d, want %d", d.Remaining(), len(ops))
	}
	for i, want := range ops {
		kind, key, value, err := d.Next()
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if kind != want.kind || !bytes.Equal(key, want.key) {
			t.Fatalf("op %d: kind=%#x key=%q", i, kind, key)
		}
		if want.kind == OpPut && !bytes.Equal(value, want.value) {
			t.Fatalf("op %d: value %q != %q", i, value, want.value)
		}
	}
	if _, _, _, err := d.Next(); err != io.EOF {
		t.Fatalf("after last op: %v, want io.EOF", err)
	}
}

// TestStreamRoundTrip: entries written through the stream framing come
// back in order through the incremental decoder, ending in io.EOF.
func TestStreamRoundTrip(t *testing.T) {
	type kv struct{ k, v []byte }
	entries := []kv{
		{[]byte("a"), []byte("1")},
		{[]byte{0x00, 0x01}, bytes.Repeat([]byte{0xab}, 100_000)},
		{[]byte("z"), nil},
	}
	buf := AppendStreamHeader(nil)
	for _, e := range entries {
		buf = AppendEntry(buf, e.k, e.v)
	}
	buf = AppendStreamEnd(buf)

	var d StreamDecoder
	d.Reset(bytes.NewReader(buf))
	for i, want := range entries {
		k, v, err := d.Next()
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if !bytes.Equal(k, want.k) || !bytes.Equal(v, want.v) {
			t.Fatalf("entry %d: %q=%q", i, k, v)
		}
	}
	if _, _, err := d.Next(); err != io.EOF {
		t.Fatalf("after end frame: %v, want io.EOF", err)
	}
}

// TestStreamTruncation: a stream cut anywhere before its end frame must
// surface ErrTruncated, never a silent short result.
func TestStreamTruncation(t *testing.T) {
	buf := AppendStreamHeader(nil)
	buf = AppendEntry(buf, []byte("key"), []byte("value"))
	buf = AppendEntry(buf, []byte("key2"), []byte("value2"))
	buf = AppendStreamEnd(buf)
	for cut := 0; cut < len(buf); cut++ {
		var d StreamDecoder
		d.Reset(bytes.NewReader(buf[:cut]))
		var err error
		for err == nil {
			_, _, err = d.Next()
		}
		if err == io.EOF {
			t.Fatalf("cut at %d decoded as complete", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("cut at %d: unexpected error %v", cut, err)
		}
	}
}

// TestBatchDecoderRejects: malformed batch bodies fail with typed errors
// instead of panicking or over-reading.
func TestBatchDecoderRejects(t *testing.T) {
	valid := AppendPut(AppendBatchHeader(nil, 1), []byte("k"), []byte("v"))
	huge := binary.AppendUvarint([]byte{Version, 1, OpPut}, MaxEntryBytes+1)
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"bad version", []byte{9, 1}, ErrVersion},
		{"count past body", []byte{Version, 200, 1}, ErrCorrupt},
		{"unknown kind", []byte{Version, 1, 0x7f, 0}, ErrCorrupt},
		{"length past end", []byte{Version, 1, OpPut, 50, 'k'}, ErrCorrupt},
		{"missing ops", []byte{Version, 2, OpDelete, 1, 'k'}, ErrCorrupt},
		{"trailing bytes", append(append([]byte{}, valid...), 0xee), ErrCorrupt},
		{"oversized field", huge, ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d BatchDecoder
			err := d.Init(tc.body)
			for err == nil {
				var e error
				if _, _, _, e = d.Next(); e == io.EOF {
					t.Fatalf("decoded cleanly")
				}
				err = e
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestBufPool: pooled buffers come back empty and giant buffers are not
// retained.
func TestBufPool(t *testing.T) {
	b := GetBuf()
	*b = append(*b, "junk"...)
	PutBuf(b)
	b2 := GetBuf()
	if len(*b2) != 0 {
		t.Fatalf("pooled buffer not reset: len %d", len(*b2))
	}
	PutBuf(b2)
	big := make([]byte, 0, keepBufBytes*2)
	PutBuf(&big) // must not panic; silently dropped
}
