package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzBatchDecoder: arbitrary bytes through the batch decoder must never
// panic, over-read, or loop forever, and anything that decodes cleanly
// must re-encode to a batch that decodes to the same op sequence
// (semantic round-trip; byte identity does not hold because varints
// tolerate non-minimal encodings on input).
func FuzzBatchDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{Version, 0})
	f.Add(AppendPut(AppendBatchHeader(nil, 1), []byte("key"), []byte("value")))
	f.Add(AppendDelete(AppendBatchHeader(nil, 1), []byte{0x00, 0xff}))
	two := AppendBatchHeader(nil, 2)
	two = AppendPut(two, []byte("a"), bytes.Repeat([]byte{0x7f}, 300))
	two = AppendDelete(two, []byte("b"))
	f.Add(two)
	f.Add([]byte{Version, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		type op struct {
			kind       byte
			key, value []byte
		}
		decode := func(body []byte) ([]op, bool) {
			var d BatchDecoder
			if err := d.Init(body); err != nil {
				return nil, false
			}
			var ops []op
			for {
				kind, key, value, err := d.Next()
				if err == io.EOF {
					return ops, true
				}
				if err != nil {
					return nil, false
				}
				if len(ops) > len(body) {
					t.Fatalf("decoded more ops than input bytes")
				}
				if kind != OpPut && kind != OpDelete {
					t.Fatalf("decoder returned unknown kind %#x without error", kind)
				}
				ops = append(ops, op{kind, append([]byte(nil), key...), append([]byte(nil), value...)})
			}
		}
		ops, ok := decode(data)
		if !ok {
			return
		}
		reenc := AppendBatchHeader(nil, len(ops))
		for _, o := range ops {
			if o.kind == OpPut {
				reenc = AppendPut(reenc, o.key, o.value)
			} else {
				reenc = AppendDelete(reenc, o.key)
			}
		}
		ops2, ok := decode(reenc)
		if !ok || len(ops2) != len(ops) {
			t.Fatalf("re-encoded batch decodes to %d ops (ok=%v), want %d", len(ops2), ok, len(ops))
		}
		for i := range ops {
			if ops[i].kind != ops2[i].kind || !bytes.Equal(ops[i].key, ops2[i].key) || !bytes.Equal(ops[i].value, ops2[i].value) {
				t.Fatalf("op %d diverges after round trip", i)
			}
		}
	})
}

// FuzzStreamDecoder: arbitrary bytes through the incremental stream
// decoder must never panic and must either error or terminate at an end
// frame; complete streams must survive a semantic re-encode/decode round
// trip.
func FuzzStreamDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendStreamEnd(AppendStreamHeader(nil)))
	one := AppendStreamHeader(nil)
	one = AppendEntry(one, []byte("key"), []byte("value"))
	f.Add(AppendStreamEnd(one))
	f.Add(AppendEntry(AppendStreamHeader(nil), []byte{0x00}, nil)) // truncated
	f.Add([]byte{Version, tagEntry, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		type kv struct{ k, v []byte }
		decode := func(stream []byte) ([]kv, bool) {
			var d StreamDecoder
			d.Reset(bytes.NewReader(stream))
			var entries []kv
			for {
				key, value, err := d.Next()
				if err == io.EOF {
					return entries, true
				}
				if err != nil {
					return nil, false
				}
				if len(entries) > len(stream) {
					t.Fatalf("decoded more entries than input bytes")
				}
				entries = append(entries, kv{append([]byte(nil), key...), append([]byte(nil), value...)})
			}
		}
		entries, ok := decode(data)
		if !ok {
			return
		}
		reenc := AppendStreamHeader(nil)
		for _, e := range entries {
			reenc = AppendEntry(reenc, e.k, e.v)
		}
		reenc = AppendStreamEnd(reenc)
		entries2, ok := decode(reenc)
		if !ok || len(entries2) != len(entries) {
			t.Fatalf("re-encoded stream decodes to %d entries (ok=%v), want %d", len(entries2), ok, len(entries))
		}
		for i := range entries {
			if !bytes.Equal(entries[i].k, entries2[i].k) || !bytes.Equal(entries[i].v, entries2[i].v) {
				t.Fatalf("entry %d diverges after round trip", i)
			}
		}
	})
}
