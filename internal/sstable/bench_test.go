package sstable

import (
	"fmt"
	"math/rand"
	"testing"

	"adcache/internal/keys"
	"adcache/internal/vfs"
)

func BenchmarkWriterAdd(b *testing.B) {
	fs := vfs.NewMem()
	f, _ := fs.Create("bench.sst")
	w := NewWriter(f, WriterOptions{})
	value := []byte(fmt.Sprintf("val%0100d", 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ik := keys.Make([]byte(fmt.Sprintf("key%012d", i)), uint64(i+1), keys.KindSet)
		if err := w.Add(ik, value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderGet(b *testing.B) {
	fs := vfs.NewMem()
	buildTable(b, fs, "bench.sst", 100_000, WriterOptions{})
	r := openTable(b, fs, "bench.sst", ReaderOptions{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key%06d", rng.Intn(100_000)))
		if _, _, ok, err := r.Get(k, keys.MaxSeq, nil); err != nil || !ok {
			b.Fatal("get failed")
		}
	}
}

func BenchmarkReaderGetFiltered(b *testing.B) {
	fs := vfs.NewMem()
	buildTable(b, fs, "bench.sst", 100_000, WriterOptions{BitsPerKey: 10})
	r := openTable(b, fs, "bench.sst", ReaderOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("absent%09d", i))
		if _, _, ok, _ := r.Get(k, keys.MaxSeq, nil); ok {
			b.Fatal("phantom")
		}
	}
}

func BenchmarkIterFullScan(b *testing.B) {
	fs := vfs.NewMem()
	buildTable(b, fs, "bench.sst", 50_000, WriterOptions{})
	r := openTable(b, fs, "bench.sst", ReaderOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := r.NewIter(nil)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			n++
		}
		if n != 50_000 {
			b.Fatalf("scanned %d", n)
		}
	}
}
