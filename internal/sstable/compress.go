package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
	"sync"
)

// Compression selects the per-block compression algorithm. It is recorded in
// every block's trailer, so readers negotiate per block rather than per file:
// a table may legally mix compressed and stored blocks (a block that fails to
// shrink is stored raw even when compression is on, as RocksDB does).
type Compression uint8

const (
	// CompressionNone stores blocks raw. The default: existing layouts,
	// golden tests and the zero-allocation read path all assume it.
	CompressionNone Compression = 0
	// CompressionFlate compresses blocks with stdlib DEFLATE. The payload is
	// uvarint(uncompressedLen) || deflate stream, so decompression can
	// allocate the exact output buffer up front.
	CompressionFlate Compression = 1
)

// String names the compression for options plumbing and bench reports.
func (c Compression) String() string {
	switch c {
	case CompressionNone:
		return "none"
	case CompressionFlate:
		return "flate"
	default:
		return "unknown"
	}
}

// TrailerLen is the per-block trailer: one compression-type byte followed by
// a crc32c over payload+type. The type byte sits under the checksum so a
// flipped type is caught as corruption, not misdecoded.
const TrailerLen = 5

// maxDecodedBlock bounds the uncompressed size a flate payload may claim,
// protecting decode from hostile length prefixes (fuzzing, disk corruption
// that survives a checksum collision).
const maxDecodedBlock = 1 << 28

// flateEncoder pools the expensive DEFLATE state (~tens of KiB per writer)
// across blocks and tables.
type flateEncoder struct {
	buf bytes.Buffer
	fw  *flate.Writer
}

var encPool = sync.Pool{New: func() any {
	e := &flateEncoder{}
	e.fw, _ = flate.NewWriter(&e.buf, flate.DefaultCompression)
	return e
}}

// flateDecoder pools the inflate window state together with its source
// reader, so decompressing a block allocates only the output buffer.
type flateDecoder struct {
	br bytes.Reader
	fr io.ReadCloser
}

var decPool = sync.Pool{New: func() any {
	d := &flateDecoder{}
	d.fr = flate.NewReader(&d.br)
	return d
}}

// compressFlate returns src encoded as uvarint(len(src)) || deflate(src),
// or ok=false when the encoded form would not be smaller than src (the
// caller then stores the block raw).
func compressFlate(src []byte) ([]byte, bool) {
	e := encPool.Get().(*flateEncoder)
	defer encPool.Put(e)
	e.buf.Reset()
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(src)))
	e.buf.Write(hdr[:n])
	e.fw.Reset(&e.buf)
	if _, err := e.fw.Write(src); err != nil {
		return nil, false
	}
	if err := e.fw.Close(); err != nil {
		return nil, false
	}
	if e.buf.Len() >= len(src) {
		return nil, false
	}
	return append([]byte(nil), e.buf.Bytes()...), true
}

// decompressFlate decodes a CompressionFlate payload produced by
// compressFlate into a freshly allocated buffer of the exact decoded size.
func decompressFlate(payload []byte) ([]byte, error) {
	size, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, errCorruptf("flate block: bad length prefix")
	}
	if size > maxDecodedBlock {
		return nil, errCorruptf("flate block: implausible decoded size %d", size)
	}
	out := make([]byte, size)
	d := decPool.Get().(*flateDecoder)
	defer decPool.Put(d)
	d.br.Reset(payload[n:])
	if err := d.fr.(flate.Resetter).Reset(&d.br, nil); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(d.fr, out); err != nil {
		return nil, errCorruptf("flate block: truncated stream: %v", err)
	}
	// The stream must end exactly at the declared size; trailing garbage or
	// a longer stream means the length prefix lied.
	var one [1]byte
	if _, err := d.fr.Read(one[:]); err != io.EOF {
		return nil, errCorruptf("flate block: stream longer than declared size %d", size)
	}
	return out, nil
}

// decodeBlock turns a physical block image (payload || type byte, checksum
// already verified and stripped) into its logical contents. For
// CompressionNone the result aliases img — no copy, no allocation — which is
// what keeps the uncompressed read path inside its alloc budget.
func decodeBlock(img []byte) ([]byte, error) {
	if len(img) == 0 {
		return nil, errCorruptf("empty block image")
	}
	payload := img[: len(img)-1 : len(img)-1]
	switch Compression(img[len(img)-1]) {
	case CompressionNone:
		return payload, nil
	case CompressionFlate:
		return decompressFlate(payload)
	default:
		return nil, errCorruptf("unknown block compression %d", img[len(img)-1])
	}
}
