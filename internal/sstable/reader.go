package sstable

import (
	"encoding/binary"
	"hash/crc32"

	"adcache/internal/block"
	"adcache/internal/bloom"
	"adcache/internal/keys"
	"adcache/internal/vfs"
)

// BlockCache is the hook through which block reads are cached. The engine's
// block cache implements it; AdCache wraps the insert side with admission
// control. Implementations must be safe for concurrent use.
type BlockCache interface {
	// Get returns the cached block for (fileNum, offset), if present.
	Get(fileNum, offset uint64) ([]byte, bool)
	// Insert offers a block for caching; the cache may decline. scan
	// reports whether the block was read by a range-scan iterator rather
	// than a point lookup, letting admission policies treat the two
	// differently (§3.4 "this strategy can also be applied to the block
	// cache").
	Insert(fileNum, offset uint64, data []byte, scan bool)
}

// ReadStats counts logical cache activity for one reader. Updated atomically
// via the shared counters passed in ReaderOptions.
type ReadStats struct {
	// BlockHits counts block reads served from the cache.
	BlockHits int64
	// BlockMisses counts block reads that went to the file.
	BlockMisses int64
	// FilterNegatives counts point lookups rejected by the Bloom filter.
	FilterNegatives int64
	// LimitScanFill enables the per-operation block-fill budget below.
	LimitScanFill bool
	// ScanFillBudget is decremented per scan-path cache insert once
	// LimitScanFill is set; at zero, further scan fills are suppressed.
	// ReadStats is per-operation and accessed from one goroutine, so no
	// synchronisation is needed.
	ScanFillBudget int64
}

// ReaderOptions configures a table reader.
type ReaderOptions struct {
	// Cache, if non-nil, serves and receives data blocks.
	Cache BlockCache
	// FileNum identifies this file in cache keys.
	FileNum uint64
	// NoFillOnScan, when true, suppresses inserting blocks read by
	// iterators (scans) into the cache; point lookups still fill. AdCache
	// overrides fill behaviour via its own BlockCache wrapper instead.
	NoFillOnScan bool
}

// Reader provides random access to a finished sstable.
type Reader struct {
	f       vfs.File
	opts    ReaderOptions
	index   []byte // decoded index block
	filter  bloom.Filter
	entries uint64
	size    int64
}

// NewReader opens the table in f.
func NewReader(f vfs.File, opts ReaderOptions) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < FooterLen {
		return nil, errCorruptf("file too small (%d bytes)", size)
	}
	var footer [FooterLen]byte
	if _, err := f.ReadAt(footer[:], size-FooterLen); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[40:]) != Magic {
		return nil, errCorruptf("bad magic")
	}
	r := &Reader{f: f, opts: opts, size: size}
	r.entries = binary.LittleEndian.Uint64(footer[32:])
	filterHandle := decodeHandle(footer[:])
	indexHandle := decodeHandle(footer[16:])

	r.index, err = r.readBlockRaw(indexHandle)
	if err != nil {
		return nil, err
	}
	if filterHandle.Length > 0 {
		fb, err := r.readBlockRaw(filterHandle)
		if err != nil {
			return nil, err
		}
		r.filter = bloom.Filter(fb)
	}
	return r, nil
}

// NumEntries reports the entry count recorded in the footer.
func (r *Reader) NumEntries() uint64 { return r.entries }

// Size reports the file size in bytes.
func (r *Reader) Size() int64 { return r.size }

// readBlockRaw reads and checksums a block, bypassing the cache. Used for
// the index and filter blocks, which are pinned in memory for the reader's
// lifetime (as RocksDB does with its index/filter partitions by default).
func (r *Reader) readBlockRaw(h Handle) ([]byte, error) {
	buf := make([]byte, h.Length+4)
	if _, err := r.f.ReadAt(buf, int64(h.Offset)); err != nil {
		return nil, err
	}
	data := buf[:h.Length]
	want := binary.LittleEndian.Uint32(buf[h.Length:])
	if crc32.Checksum(data, crcTable) != want {
		return nil, errCorruptf("checksum mismatch at offset %d", h.Offset)
	}
	return data, nil
}

// readBlock fetches a data block through the cache. fill controls whether a
// missed block is offered to the cache (false for scan paths when
// NoFillOnScan is set); scan tags the insert with its origin.
func (r *Reader) readBlock(h Handle, fill, scan bool, stats *ReadStats) ([]byte, error) {
	if c := r.opts.Cache; c != nil {
		if data, ok := c.Get(r.opts.FileNum, h.Offset); ok {
			if stats != nil {
				stats.BlockHits++
			}
			return data, nil
		}
	}
	data, err := r.readBlockRaw(h)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		stats.BlockMisses++
	}
	if c := r.opts.Cache; c != nil && fill {
		if scan && stats != nil && stats.LimitScanFill {
			// Block-level partial admission: the fill budget is consumed
			// only by actual inserts, never by cache hits.
			if stats.ScanFillBudget > 0 {
				stats.ScanFillBudget--
				c.Insert(r.opts.FileNum, h.Offset, data, scan)
			}
		} else {
			c.Insert(r.opts.FileNum, h.Offset, data, scan)
		}
	}
	return data, nil
}

// findBlock locates the handle of the data block that may contain ikey.
// Returns ok=false if ikey is past the last block.
func (r *Reader) findBlock(ikey keys.InternalKey) (Handle, bool, error) {
	it, err := block.NewIter(r.index, icmp)
	if err != nil {
		return Handle{}, false, err
	}
	if !it.Seek(ikey) {
		return Handle{}, false, it.Err()
	}
	if len(it.Value()) != 16 {
		return Handle{}, false, errCorruptf("bad index entry")
	}
	return decodeHandle(it.Value()), true, nil
}

// Get returns the value for the newest version of userKey visible at
// snapshot seq. Returns ok=false if the table has no visible version;
// deleted=true if the newest visible version is a tombstone.
func (r *Reader) Get(userKey []byte, seq uint64, stats *ReadStats) (value []byte, deleted, ok bool, err error) {
	if r.filter != nil && !r.filter.MayContain(userKey) {
		if stats != nil {
			stats.FilterNegatives++
		}
		return nil, false, false, nil
	}
	search := keys.MakeSearch(userKey, seq)
	h, found, err := r.findBlock(search)
	if err != nil || !found {
		return nil, false, false, err
	}
	data, err := r.readBlock(h, true, false, stats)
	if err != nil {
		return nil, false, false, err
	}
	it, err := block.NewIter(data, icmp)
	if err != nil {
		return nil, false, false, err
	}
	if !it.Seek(search) {
		return nil, false, false, it.Err()
	}
	ik := keys.InternalKey(it.Key())
	if string(ik.UserKey()) != string(userKey) {
		return nil, false, false, nil
	}
	if ik.Kind() == keys.KindDelete {
		return nil, true, true, nil
	}
	// Copy: the block may live in the cache and be evicted/reused.
	return append([]byte(nil), it.Value()...), false, true, nil
}

func icmp(a, b []byte) int { return keys.Compare(a, b) }
