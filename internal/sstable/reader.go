package sstable

import (
	"encoding/binary"
	"hash/crc32"

	"adcache/internal/block"
	"adcache/internal/bloom"
	"adcache/internal/keys"
	"adcache/internal/vfs"
)

// BlockCache is the hook through which block reads are cached. The engine's
// block cache implements it; AdCache wraps the insert side with admission
// control. Implementations must be safe for concurrent use.
//
// The cache holds the block's *physical image* — compressed payload plus the
// compression-type byte, exactly as stored on disk minus the checksum — so
// its byte budget charges real resident memory, not the inflated logical
// view. The reader decodes images after Get; for uncompressed blocks the
// decode is a zero-copy slice.
type BlockCache interface {
	// Get returns the cached physical block image for (fileNum, offset),
	// if present.
	Get(fileNum, offset uint64) ([]byte, bool)
	// Insert offers a physical block image for caching; the cache may
	// decline. logical is the decoded size of the block in bytes (equal to
	// len(data) for uncompressed blocks), letting caches report both
	// physical and logical occupancy. scan reports whether the block was
	// read by a range-scan iterator rather than a point lookup, letting
	// admission policies treat the two differently (§3.4 "this strategy can
	// also be applied to the block cache").
	Insert(fileNum, offset uint64, data []byte, logical int, scan bool)
}

// ReadStats counts logical cache activity for one reader. Updated atomically
// via the shared counters passed in ReaderOptions.
type ReadStats struct {
	// BlockHits counts block reads served from the cache.
	BlockHits int64
	// BlockMisses counts block reads that went to the file.
	BlockMisses int64
	// FilterNegatives counts point lookups rejected by the Bloom filter.
	FilterNegatives int64
	// LimitScanFill enables the per-operation block-fill budget below.
	LimitScanFill bool
	// ScanFillBudget is decremented per scan-path cache insert once
	// LimitScanFill is set; at zero, further scan fills are suppressed.
	// ReadStats is per-operation and accessed from one goroutine, so no
	// synchronisation is needed.
	ScanFillBudget int64

	// Scratch state reused across operations when the same ReadStats is
	// passed to successive reads (the engine pools them): the seek-key
	// buffer and the data-block iterator keep their backing storage, making
	// warm point lookups allocation-free in the block/sstable layers.
	seekBuf   []byte
	blockIter block.Iter
}

// Reset clears the counters and flags for a new operation while retaining
// the scratch buffers, so pooled ReadStats stay allocation-free.
func (s *ReadStats) Reset() {
	s.BlockHits = 0
	s.BlockMisses = 0
	s.FilterNegatives = 0
	s.LimitScanFill = false
	s.ScanFillBudget = 0
	s.blockIter.Reset()
}

// ReaderOptions configures a table reader.
type ReaderOptions struct {
	// Cache, if non-nil, serves and receives data blocks.
	Cache BlockCache
	// FileNum identifies this file in cache keys.
	FileNum uint64
	// NoFillOnScan, when true, suppresses inserting blocks read by
	// iterators (scans) into the cache; point lookups still fill. AdCache
	// overrides fill behaviour via its own BlockCache wrapper instead.
	NoFillOnScan bool
}

// indexEntry is one parsed index-block entry: the last internal key of a
// data block and the block's location. The separator aliases a buffer pinned
// for the Reader's lifetime.
type indexEntry struct {
	sep keys.InternalKey
	h   Handle
}

// Reader provides random access to a finished sstable.
type Reader struct {
	f    vfs.File
	opts ReaderOptions
	// nc, when non-nil, serves block reads as zero-copy pinned views (an
	// mmap-style capability probed once at open, so the fallback decision
	// is immutable and race-free). Block images handed to the cache then
	// alias mapped file pages rather than heap copies.
	nc vfs.NoCopyReaderAt
	// index is the index block parsed once at open into a flat sorted
	// slice, pinned for the Reader's lifetime. Point lookups binary-search
	// it directly and table iterators walk it by position, so no per-read
	// index-block iterator is ever constructed.
	index   []indexEntry
	filter  bloom.Filter
	entries uint64
	size    int64
}

// NewReader opens the table in f.
func NewReader(f vfs.File, opts ReaderOptions) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < FooterLen {
		return nil, errCorruptf("file too small (%d bytes)", size)
	}
	var nc vfs.NoCopyReaderAt
	if cap, ok := f.(vfs.NoCopyReaderAt); ok {
		// Probe once: a file that can serve the footer as a pinned view can
		// serve every block (mapping failures surface here, not mid-read).
		if _, err := cap.ReadAtNoCopy(size-FooterLen, FooterLen); err == nil {
			nc = cap
		}
	}
	var footer [FooterLen]byte
	if _, err := f.ReadAt(footer[:], size-FooterLen); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[40:]) != Magic {
		return nil, errCorruptf("bad magic")
	}
	r := &Reader{f: f, opts: opts, nc: nc, size: size}
	r.entries = binary.LittleEndian.Uint64(footer[32:])
	filterHandle := decodeHandle(footer[:])
	indexHandle := decodeHandle(footer[16:])

	indexRaw, err := r.readBlockRaw(indexHandle)
	if err != nil {
		return nil, err
	}
	if r.index, err = parseIndex(indexRaw); err != nil {
		return nil, err
	}
	if filterHandle.Length > 0 {
		fb, err := r.readBlockRaw(filterHandle)
		if err != nil {
			return nil, err
		}
		r.filter = bloom.Filter(fb)
	}
	return r, nil
}

// NumEntries reports the entry count recorded in the footer.
func (r *Reader) NumEntries() uint64 { return r.entries }

// Size reports the file size in bytes.
func (r *Reader) Size() int64 { return r.size }

// readBlockPhysical reads one block's physical image — payload plus the
// compression-type byte, checksum verified and stripped — directly from the
// file. When the file supports pinned no-copy views (mmap on OSFS) the image
// aliases mapped pages and the read allocates nothing; otherwise it is one
// heap buffer and one ReadAt, as before.
func (r *Reader) readBlockPhysical(h Handle) ([]byte, error) {
	n := int64(h.Length) + TrailerLen
	var buf []byte
	if r.nc != nil {
		view, err := r.nc.ReadAtNoCopy(int64(h.Offset), n)
		if err != nil {
			return nil, err
		}
		buf = view
	} else {
		buf = make([]byte, n)
		if _, err := r.f.ReadAt(buf, int64(h.Offset)); err != nil {
			return nil, err
		}
	}
	img := buf[: h.Length+1 : h.Length+1]
	want := binary.LittleEndian.Uint32(buf[h.Length+1:])
	if crc32.Checksum(img, crcTable) != want {
		return nil, errCorruptf("checksum mismatch at offset %d", h.Offset)
	}
	return img, nil
}

// readBlockRaw reads, checksums and decodes a block, bypassing the cache.
// Used for the index and filter blocks, which are pinned in memory for the
// reader's lifetime (as RocksDB does with its index/filter partitions by
// default), and by compaction iterators.
func (r *Reader) readBlockRaw(h Handle) ([]byte, error) {
	img, err := r.readBlockPhysical(h)
	if err != nil {
		return nil, err
	}
	return decodeBlock(img)
}

// readBlock fetches a data block through the cache. The cache stores
// physical images; the logical block is decoded after every Get or miss (a
// zero-copy slice for uncompressed blocks, a fresh exact-size buffer for
// flate). fill controls whether a missed block is offered to the cache
// (false for scan paths when NoFillOnScan is set); scan tags the insert with
// its origin.
func (r *Reader) readBlock(h Handle, fill, scan bool, stats *ReadStats) ([]byte, error) {
	if c := r.opts.Cache; c != nil {
		if img, ok := c.Get(r.opts.FileNum, h.Offset); ok {
			if stats != nil {
				stats.BlockHits++
			}
			return decodeBlock(img)
		}
	}
	img, err := r.readBlockPhysical(h)
	if err != nil {
		return nil, err
	}
	data, err := decodeBlock(img)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		stats.BlockMisses++
	}
	if c := r.opts.Cache; c != nil && fill {
		if scan && stats != nil && stats.LimitScanFill {
			// Block-level partial admission: the fill budget is consumed
			// only by actual inserts, never by cache hits.
			if stats.ScanFillBudget > 0 {
				stats.ScanFillBudget--
				c.Insert(r.opts.FileNum, h.Offset, img, len(data), scan)
			}
		} else {
			c.Insert(r.opts.FileNum, h.Offset, img, len(data), scan)
		}
	}
	return data, nil
}

// parseIndex decodes a serialized index block into a flat sorted entry
// slice. Separator keys are copied into one contiguous arena so the parsed
// form holds exactly two heap objects regardless of block count.
func parseIndex(raw []byte) ([]indexEntry, error) {
	it, err := block.NewIter(raw, icmp)
	if err != nil {
		return nil, err
	}
	var (
		arena   []byte
		offsets []int // 2 per entry: sep start, sep end
		handles []Handle
	)
	for ok := it.First(); ok; ok = it.Next() {
		if len(it.Value()) != 16 {
			return nil, errCorruptf("bad index entry")
		}
		start := len(arena)
		arena = append(arena, it.Key()...)
		offsets = append(offsets, start, len(arena))
		handles = append(handles, decodeHandle(it.Value()))
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	entries := make([]indexEntry, len(handles))
	for i := range entries {
		entries[i] = indexEntry{
			sep: keys.InternalKey(arena[offsets[2*i]:offsets[2*i+1]]),
			h:   handles[i],
		}
	}
	return entries, nil
}

// findBlock locates the position in the parsed index of the data block that
// may contain ikey: the first block whose separator (last key) >= ikey.
// Returns len(r.index) if ikey is past the last block.
func (r *Reader) findBlock(ikey keys.InternalKey) int {
	lo, hi := 0, len(r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys.Compare(r.index[mid].sep, ikey) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value for the newest version of userKey visible at
// snapshot seq. Returns ok=false if the table has no visible version;
// deleted=true if the newest visible version is a tombstone.
func (r *Reader) Get(userKey []byte, seq uint64, stats *ReadStats) (value []byte, deleted, ok bool, err error) {
	if r.filter != nil && !r.filter.MayContain(userKey) {
		if stats != nil {
			stats.FilterNegatives++
		}
		return nil, false, false, nil
	}
	// The seek key and block iterator come from the per-operation scratch in
	// stats when available, so a warm lookup performs no allocations before
	// the final value copy.
	var it *block.Iter
	var search keys.InternalKey
	if stats != nil {
		stats.seekBuf = keys.AppendSearch(stats.seekBuf[:0], userKey, seq)
		search = keys.InternalKey(stats.seekBuf)
		it = &stats.blockIter
	} else {
		search = keys.MakeSearch(userKey, seq)
		it = new(block.Iter)
	}
	pos := r.findBlock(search)
	if pos == len(r.index) {
		return nil, false, false, nil
	}
	data, err := r.readBlock(r.index[pos].h, true, false, stats)
	if err != nil {
		return nil, false, false, err
	}
	if err := it.Init(data, icmp); err != nil {
		return nil, false, false, err
	}
	if !it.Seek(search) {
		return nil, false, false, it.Err()
	}
	ik := keys.InternalKey(it.Key())
	if string(ik.UserKey()) != string(userKey) {
		return nil, false, false, nil
	}
	if ik.Kind() == keys.KindDelete {
		return nil, true, true, nil
	}
	// Copy: the block may live in the cache and be evicted/reused.
	return append([]byte(nil), it.Value()...), false, true, nil
}

func icmp(a, b []byte) int { return keys.Compare(a, b) }
