package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"adcache/internal/keys"
	"adcache/internal/vfs"
)

func TestCompressFlateRoundTrip(t *testing.T) {
	for _, src := range [][]byte{
		bytes.Repeat([]byte("abcdefgh"), 512),
		[]byte("short but repeated repeated repeated repeated"),
		make([]byte, 4096), // all zero: maximally compressible
	} {
		payload, ok := compressFlate(src)
		if !ok {
			t.Fatalf("compressFlate rejected compressible input of %d bytes", len(src))
		}
		if len(payload) >= len(src) {
			t.Fatalf("compressed %d bytes into %d", len(src), len(payload))
		}
		got, err := decompressFlate(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestCompressFlateRefusesIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 4096)
	rng.Read(src)
	if _, ok := compressFlate(src); ok {
		t.Fatal("random data reported as compressible")
	}
}

func TestDecodeBlockRejectsCorruptPayloads(t *testing.T) {
	cases := map[string][]byte{
		"empty image":    {},
		"unknown type":   {1, 2, 3, 0x7F},
		"bad prefix":     {0x80, byte(CompressionFlate)}, // unterminated uvarint
		"truncated body": append([]byte{200, 1}, byte(CompressionFlate)),
	}
	for name, img := range cases {
		if _, err := decodeBlock(img); err == nil {
			t.Errorf("%s: decodeBlock accepted %v", name, img)
		}
	}
	// A length prefix past maxDecodedBlock must be rejected before any
	// allocation happens.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, byte(CompressionFlate)}
	if _, err := decodeBlock(huge); err == nil {
		t.Error("implausible decoded size accepted")
	}
}

// buildTableValues writes n entries with the given value generator under
// opts, returning the table's meta.
func buildTableValues(t testing.TB, fs vfs.FS, name string, n int, opts WriterOptions, value func(i int) []byte) Meta {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, opts)
	for i := 0; i < n; i++ {
		ik := keys.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), keys.KindSet)
		if err := w.Add(ik, value(i)); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return meta
}

// TestCompressionEquivalence writes the same keyspace with CompressionNone
// and CompressionFlate and demands byte-identical query and iteration
// results, plus a genuinely smaller physical file for the compressed table.
func TestCompressionEquivalence(t *testing.T) {
	fs := vfs.NewMem()
	value := func(i int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("val%06d-", i)), 8)
	}
	const n = 2000
	metaNone := buildTableValues(t, fs, "none.sst", n, WriterOptions{BlockSize: 1024}, value)
	metaFlate := buildTableValues(t, fs, "flate.sst", n,
		WriterOptions{BlockSize: 1024, Compression: CompressionFlate}, value)

	if metaFlate.Size >= metaNone.Size {
		t.Fatalf("flate table (%d bytes) not smaller than none (%d bytes)",
			metaFlate.Size, metaNone.Size)
	}
	if metaFlate.LogicalSize <= metaFlate.Size {
		t.Fatalf("flate LogicalSize %d <= physical Size %d",
			metaFlate.LogicalSize, metaFlate.Size)
	}
	if metaNone.LogicalSize != metaNone.Size {
		t.Fatalf("uncompressed LogicalSize %d != Size %d",
			metaNone.LogicalSize, metaNone.Size)
	}

	rNone := openTable(t, fs, "none.sst", ReaderOptions{})
	rFlate := openTable(t, fs, "flate.sst", ReaderOptions{})

	// Point lookups agree, present and absent.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		k := []byte(fmt.Sprintf("key%06d", i))
		v1, _, ok1, err1 := rNone.Get(k, keys.MaxSeq, nil)
		v2, _, ok2, err2 := rFlate.Get(k, keys.MaxSeq, nil)
		if err1 != nil || err2 != nil || !ok1 || !ok2 || !bytes.Equal(v1, v2) {
			t.Fatalf("Get(%d) diverges: %q/%v/%v vs %q/%v/%v", i, v1, ok1, err1, v2, ok2, err2)
		}
	}
	if _, _, ok, _ := rFlate.Get([]byte("missing"), keys.MaxSeq, nil); ok {
		t.Fatal("flate table found a missing key")
	}

	// Full iterations are entry-for-entry identical.
	it1, err := rNone.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	it2, err := rFlate.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	ok1, ok2 := it1.First(), it2.First()
	count := 0
	for ok1 && ok2 {
		if !bytes.Equal(it1.Key(), it2.Key()) || !bytes.Equal(it1.Value(), it2.Value()) {
			t.Fatalf("entry %d diverges: %s vs %s", count, it1.Key(), it2.Key())
		}
		count++
		ok1, ok2 = it1.Next(), it2.Next()
	}
	if ok1 != ok2 || count != n {
		t.Fatalf("iterations ended unevenly: ok1=%v ok2=%v count=%d", ok1, ok2, count)
	}
	if it1.Err() != nil || it2.Err() != nil {
		t.Fatalf("iter errors: %v / %v", it1.Err(), it2.Err())
	}
}

// TestCompressedCorruptionDetected flips one byte of a compressed table and
// expects the block checksum — which covers the compressed payload — to
// refuse it.
func TestCompressedCorruptionDetected(t *testing.T) {
	fs := vfs.NewMem()
	buildTableValues(t, fs, "t.sst", 500,
		WriterOptions{Compression: CompressionFlate},
		func(i int) []byte { return bytes.Repeat([]byte("v"), 64) })
	f, _ := fs.Open("t.sst")
	f.WriteAt([]byte{0xFF}, 10)
	r, err := NewReader(f, ReaderOptions{})
	if err == nil {
		if _, _, _, err := r.Get([]byte("key000001"), keys.MaxSeq, nil); err == nil {
			t.Fatal("corrupted compressed block not detected")
		}
	}
}

// TestCompressedCacheChargesPhysicalBytes checks that a reader over a
// compressed table inserts the compressed image while reporting the logical
// (decoded) size to the cache.
func TestCompressedCacheChargesPhysicalBytes(t *testing.T) {
	fs := vfs.NewMem()
	buildTableValues(t, fs, "t.sst", 1000,
		WriterOptions{Compression: CompressionFlate},
		func(i int) []byte { return bytes.Repeat([]byte(fmt.Sprintf("v%04d", i)), 16) })
	cache := newLogicalFakeCache()
	r := openTable(t, fs, "t.sst", ReaderOptions{Cache: cache, FileNum: 3})
	if _, _, ok, err := r.Get([]byte("key000500"), keys.MaxSeq, nil); !ok || err != nil {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if cache.inserts != 1 {
		t.Fatalf("inserts = %d", cache.inserts)
	}
	if cache.lastLogical <= cache.lastPhysical {
		t.Fatalf("logical %d not larger than physical %d for a compressed block",
			cache.lastLogical, cache.lastPhysical)
	}
	// A repeat read must decode the cached image, not hit the file again.
	var s ReadStats
	v, _, ok, err := r.Get([]byte("key000500"), keys.MaxSeq, &s)
	if !ok || err != nil || s.BlockHits != 1 || s.BlockMisses != 0 {
		t.Fatalf("cached read: ok=%v err=%v stats=%+v", ok, err, s)
	}
	want := bytes.Repeat([]byte("v0500"), 16)
	if !bytes.Equal(v, want) {
		t.Fatalf("cached read returned %q", v)
	}
}

type logicalFakeCache struct {
	store        map[[2]uint64][]byte
	inserts      int
	lastPhysical int
	lastLogical  int
}

func newLogicalFakeCache() *logicalFakeCache {
	return &logicalFakeCache{store: map[[2]uint64][]byte{}}
}

func (c *logicalFakeCache) Get(fileNum, off uint64) ([]byte, bool) {
	b, ok := c.store[[2]uint64{fileNum, off}]
	return b, ok
}

func (c *logicalFakeCache) Insert(fileNum, off uint64, data []byte, logical int, scan bool) {
	c.store[[2]uint64{fileNum, off}] = data
	c.inserts++
	c.lastPhysical = len(data)
	c.lastLogical = logical
}

// FuzzBlockTrailer exercises the physical block codec: arbitrary payloads
// must round-trip through both codecs, and decodeBlock must reject (never
// panic on) arbitrary images.
func FuzzBlockTrailer(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("hello world"))
	f.Add(bytes.Repeat([]byte("block"), 1000))
	f.Add([]byte{0x80, 0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Stored raw: decode must alias the payload exactly.
		img := append(append([]byte{}, data...), byte(CompressionNone))
		got, err := decodeBlock(img)
		if err != nil {
			t.Fatalf("decode of stored block failed: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("stored round trip mismatch")
		}
		// Compressed, when it shrinks: decode must reproduce the input.
		if payload, ok := compressFlate(data); ok {
			img := append(payload, byte(CompressionFlate))
			got, err := decodeBlock(img)
			if err != nil {
				t.Fatalf("decode of compressed block failed: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("compressed round trip mismatch")
			}
		}
		// Arbitrary bytes as a flate image: any outcome but a panic or an
		// over-allocation is fine.
		decodeBlock(append(append([]byte{}, data...), byte(CompressionFlate)))
	})
}
