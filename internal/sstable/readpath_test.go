package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"

	"adcache/internal/block"
	"adcache/internal/keys"
	"adcache/internal/vfs"
)

// oldFindBlock reimplements the pre-parsed-index lookup path — an index
// block iterator seeked per Get — as the reference the flat parsed index
// must match byte-for-byte.
type oldIndexPath struct {
	indexRaw []byte
}

func newOldIndexPath(t *testing.T, fs vfs.FS, name string) *oldIndexPath {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	var footer [FooterLen]byte
	if _, err := f.ReadAt(footer[:], size-FooterLen); err != nil {
		t.Fatal(err)
	}
	h := decodeHandle(footer[16:])
	buf := make([]byte, h.Length)
	if _, err := f.ReadAt(buf, int64(h.Offset)); err != nil {
		t.Fatal(err)
	}
	return &oldIndexPath{indexRaw: buf}
}

// findBlock is the old per-Get index seek: block iterator over the raw
// index block, Seek, decode the handle from the entry value.
func (o *oldIndexPath) findBlock(t *testing.T, ikey keys.InternalKey) (Handle, bool) {
	t.Helper()
	it, err := block.NewIter(o.indexRaw, icmp)
	if err != nil {
		t.Fatal(err)
	}
	if !it.Seek(ikey) {
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		return Handle{}, false
	}
	if len(it.Value()) != 16 {
		t.Fatal("bad index entry")
	}
	return decodeHandle(it.Value()), true
}

// oldGet is the pre-refactor Reader.Get: old index seek, fresh block
// iterator per lookup.
func (o *oldIndexPath) oldGet(t *testing.T, r *Reader, userKey []byte, seq uint64) (value []byte, deleted, ok bool) {
	t.Helper()
	if r.filter != nil && !r.filter.MayContain(userKey) {
		return nil, false, false
	}
	search := keys.MakeSearch(userKey, seq)
	h, found := o.findBlock(t, search)
	if !found {
		return nil, false, false
	}
	data, err := r.readBlock(h, true, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	it, err := block.NewIter(data, icmp)
	if err != nil {
		t.Fatal(err)
	}
	if !it.Seek(search) {
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		return nil, false, false
	}
	ik := keys.InternalKey(it.Key())
	if string(ik.UserKey()) != string(userKey) {
		return nil, false, false
	}
	if ik.Kind() == keys.KindDelete {
		return nil, true, true
	}
	return append([]byte(nil), it.Value()...), false, true
}

// TestParsedIndexGetEquivalence checks that the parsed-index Reader.Get
// returns byte-identical results to the old index-iterator path across
// restart-interval and block-size edge cases, for present and absent keys.
func TestParsedIndexGetEquivalence(t *testing.T) {
	for _, tc := range []struct {
		restart, blockSize int
	}{
		{1, 64}, {1, 4096}, {2, 128}, {3, 256}, {16, 512}, {16, 4096}, {64, 1024},
	} {
		name := fmt.Sprintf("restart=%d/block=%d", tc.restart, tc.blockSize)
		t.Run(name, func(t *testing.T) {
			fs := vfs.NewMem()
			const n = 700
			buildTable(t, fs, "t.sst", n, WriterOptions{
				RestartInterval: tc.restart, BlockSize: tc.blockSize, BitsPerKey: 10,
			})
			r := openTable(t, fs, "t.sst", ReaderOptions{})
			old := newOldIndexPath(t, fs, "t.sst")

			check := func(userKey []byte, seq uint64) {
				t.Helper()
				wantV, wantDel, wantOK := old.oldGet(t, r, userKey, seq)
				gotV, gotDel, gotOK, err := r.Get(userKey, seq, nil)
				if err != nil {
					t.Fatalf("Get(%q): %v", userKey, err)
				}
				if gotOK != wantOK || gotDel != wantDel || !bytes.Equal(gotV, wantV) {
					t.Fatalf("Get(%q,%d) = (%q,%v,%v), old path = (%q,%v,%v)",
						userKey, seq, gotV, gotDel, gotOK, wantV, wantDel, wantOK)
				}
			}
			for i := 0; i < n; i++ {
				check([]byte(fmt.Sprintf("key%06d", i)), keys.MaxSeq)
			}
			// Absent keys around, between and past every table key.
			check([]byte("aaa"), keys.MaxSeq)
			check([]byte("key"), keys.MaxSeq)
			for i := 0; i < n; i += 37 {
				check([]byte(fmt.Sprintf("key%06d!", i)), keys.MaxSeq)
			}
			check([]byte("zzz"), keys.MaxSeq)
			// Sequence-number visibility: entries are written with seq=i+1.
			check([]byte("key000050"), 10)
			check([]byte("key000050"), 51)
			check([]byte("key000050"), 52)
		})
	}
}

// TestParsedIndexIterEquivalence checks Iter against the old path: a full
// scan must enumerate identical entries, and Seek must land on identical
// positions for every key and between-key probe.
func TestParsedIndexIterEquivalence(t *testing.T) {
	for _, tc := range []struct {
		restart, blockSize int
	}{
		{1, 64}, {2, 128}, {16, 512}, {64, 4096},
	} {
		name := fmt.Sprintf("restart=%d/block=%d", tc.restart, tc.blockSize)
		t.Run(name, func(t *testing.T) {
			fs := vfs.NewMem()
			const n = 400
			buildTable(t, fs, "t.sst", n, WriterOptions{
				RestartInterval: tc.restart, BlockSize: tc.blockSize,
			})
			r := openTable(t, fs, "t.sst", ReaderOptions{})

			// Full scan must yield every entry in written order.
			it, err := r.NewIter(nil)
			if err != nil {
				t.Fatal(err)
			}
			i := 0
			for ok := it.First(); ok; ok = it.Next() {
				wantK := fmt.Sprintf("key%06d", i)
				wantV := fmt.Sprintf("val%06d", i)
				if string(it.Key().UserKey()) != wantK || string(it.Value()) != wantV {
					t.Fatalf("entry %d = %q=%q, want %q=%q",
						i, it.Key().UserKey(), it.Value(), wantK, wantV)
				}
				i++
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			if i != n {
				t.Fatalf("scanned %d entries, want %d", i, n)
			}

			// Seeks: each present key, between-key probes, and past-the-end.
			for j := 0; j < n+3; j++ {
				var target keys.InternalKey
				switch {
				case j < n:
					target = keys.MakeSearch([]byte(fmt.Sprintf("key%06d", j)), keys.MaxSeq)
				case j == n:
					target = keys.MakeSearch([]byte("key000100!"), keys.MaxSeq)
				case j == n+1:
					target = keys.MakeSearch([]byte("aaa"), keys.MaxSeq)
				default:
					target = keys.MakeSearch([]byte("zzz"), keys.MaxSeq)
				}
				ok := it.Seek(target)
				wantIdx := seekIndex(target, n)
				if (wantIdx < n) != ok {
					t.Fatalf("Seek(%q) = %v, want positioned=%v", target, ok, wantIdx < n)
				}
				if ok {
					wantK := fmt.Sprintf("key%06d", wantIdx)
					if string(it.Key().UserKey()) != wantK {
						t.Fatalf("Seek(%q) landed on %q, want %q", target, it.Key().UserKey(), wantK)
					}
				}
			}
		})
	}
}

// seekIndex computes the expected landing index for a seek target in a
// table of keys key%06d (0..n-1).
func seekIndex(target keys.InternalKey, n int) int {
	user := string(target.UserKey())
	for i := 0; i < n; i++ {
		if fmt.Sprintf("key%06d", i) >= user {
			return i
		}
	}
	return n
}

// corruptBlockInPlace flips entry bytes of the data block at handle h and
// recomputes the trailing checksum, producing a block that passes the CRC
// but fails structural decoding — the case Iter.Seek used to swallow.
func corruptBlockInPlace(t *testing.T, fs vfs.FS, name string, h Handle) {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, h.Length)
	if _, err := f.ReadAt(buf, int64(h.Offset)); err != nil {
		t.Fatal(err)
	}
	// 0xFF... in the leading varints makes the first entry decode to an
	// impossible shared-prefix length.
	for i := 0; i < 8 && i < len(buf); i++ {
		buf[i] = 0xFF
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(buf, crcTable))
	if _, err := f.WriteAt(buf, int64(h.Offset)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(crcBuf[:], int64(h.Offset+h.Length)); err != nil {
		t.Fatal(err)
	}
}

// TestIterSeekLatchesCorruptBlock is the regression test for the swallowed
// corruption error: when a data-block seek fails because the block is
// corrupt (not because the target is past the block), the iterator must
// surface the error instead of silently skipping to the next block.
func TestIterSeekLatchesCorruptBlock(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 2000, WriterOptions{BlockSize: 256})
	r := openTable(t, fs, "t.sst", ReaderOptions{})
	if len(r.index) < 3 {
		t.Fatalf("need ≥3 data blocks, got %d", len(r.index))
	}
	corruptBlockInPlace(t, fs, "t.sst", r.index[1].h)

	// Seek to a key inside the corrupted second block.
	target := keys.InternalKey(append([]byte(nil), r.index[1].sep...))
	it, err := r.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	if it.Seek(target) {
		t.Fatalf("Seek landed on %q inside a corrupt block", it.Key())
	}
	if it.Err() == nil {
		t.Fatal("corrupt data block silently skipped: Err() == nil after failed Seek")
	}

	// A forward scan crossing into the corrupt block must also stop with
	// the error latched rather than skipping the block's entries.
	it2, err := r.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ok := it2.First(); ok; ok = it2.Next() {
		n++
	}
	if it2.Err() == nil {
		t.Fatal("scan crossed a corrupt block without surfacing an error")
	}
}

// TestReaderGetWarmAllocs locks in the zero-allocation read path: with a
// warm block cache and a reused ReadStats, a point lookup allocates only
// the returned value copy, and a Bloom-negative lookup allocates nothing.
// These paths use no sync.Pool, so the bounds hold under -race too.
func TestReaderGetWarmAllocs(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 2000, WriterOptions{BitsPerKey: 10})
	cache := newFakeCache()
	r := openTable(t, fs, "t.sst", ReaderOptions{Cache: cache, FileNum: 1})
	stats := &ReadStats{}
	key := []byte("key000777")
	// Warm: fills the cache and grows the scratch buffers.
	if _, _, ok, err := r.Get(key, keys.MaxSeq, stats); err != nil || !ok {
		t.Fatalf("warmup Get: ok=%v err=%v", ok, err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		stats.Reset()
		if _, _, ok, err := r.Get(key, keys.MaxSeq, stats); err != nil || !ok {
			t.Fatalf("Get: ok=%v err=%v", ok, err)
		}
	})
	if allocs > 1 {
		t.Fatalf("cache-hit Get allocates %.1f objects/op, want ≤ 1 (the value copy)", allocs)
	}

	absent := []byte("nope000001")
	allocs = testing.AllocsPerRun(200, func() {
		stats.Reset()
		if _, _, ok, _ := r.Get(absent, keys.MaxSeq, stats); ok {
			t.Fatal("phantom key")
		}
	})
	if allocs != 0 {
		t.Fatalf("bloom-negative Get allocates %.1f objects/op, want 0", allocs)
	}
}

// TestIterWarmScanAllocs: re-initialising one Iter over a warm cache and
// scanning allocates nothing once its block-key buffer has grown.
func TestIterWarmScanAllocs(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 2000, WriterOptions{BlockSize: 1024})
	cache := newFakeCache()
	r := openTable(t, fs, "t.sst", ReaderOptions{Cache: cache, FileNum: 1})
	var it Iter
	scan := func() {
		it.Init(r, nil)
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			n++
		}
		if n != 2000 || it.Err() != nil {
			t.Fatalf("scanned %d, err=%v", n, it.Err())
		}
	}
	scan() // warm cache + buffers
	allocs := testing.AllocsPerRun(20, scan)
	if allocs != 0 {
		t.Fatalf("warm full scan allocates %.1f objects/op, want 0", allocs)
	}
}
