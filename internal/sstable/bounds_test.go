package sstable

import (
	"fmt"
	"testing"

	"adcache/internal/keys"
	"adcache/internal/vfs"
)

func tkey(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }

// TestIterUpperBound checks that a bounded iterator yields exactly the
// entries below the bound from every starting position.
func TestIterUpperBound(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 1000, WriterOptions{BlockSize: 256})
	r := openTable(t, fs, "t.sst", ReaderOptions{})

	it, err := r.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	it.SetUpperBound(tkey(600))

	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		if string(it.Key().UserKey()) >= string(tkey(600)) {
			t.Fatalf("entry %q at or past bound", it.Key().UserKey())
		}
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Fatalf("bounded iteration yielded %d entries, want 600", n)
	}

	// Seek inside the bound, then walk across it.
	if !it.Seek(keys.MakeSearch(tkey(598), keys.MaxSeq)) {
		t.Fatal("Seek(598) under bound failed")
	}
	for ok := true; ok; ok = it.Next() {
		n++
	}
	// Seek at and past the bound must immediately report exhaustion.
	for _, i := range []int{600, 601, 900} {
		if it.Seek(keys.MakeSearch(tkey(i), keys.MaxSeq)) {
			t.Fatalf("Seek(%d) succeeded past bound", i)
		}
	}
}

// TestIterUpperBoundStopsReadingBlocks checks the bound prevents loading
// blocks past the range, not just filtering their entries.
func TestIterUpperBoundStopsReadingBlocks(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 2000, WriterOptions{BlockSize: 256})
	r := openTable(t, fs, "t.sst", ReaderOptions{})

	full := countBlockReads(t, r, nil)
	half := countBlockReads(t, r, tkey(1000))
	if half >= full {
		t.Fatalf("bounded scan read %d blocks, unbounded %d — bound did not limit I/O", half, full)
	}
}

func countBlockReads(t *testing.T, r *Reader, upper []byte) int64 {
	t.Helper()
	var stats ReadStats
	it, err := r.NewIter(&stats)
	if err != nil {
		t.Fatal(err)
	}
	it.SetUpperBound(upper)
	for ok := it.First(); ok; ok = it.Next() {
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return stats.BlockMisses + stats.BlockHits
}

// TestIterInitClearsUpperBound checks a pooled iterator re-Init'd on a new
// table does not inherit the previous operation's bound.
func TestIterInitClearsUpperBound(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 100, WriterOptions{BlockSize: 256})
	r := openTable(t, fs, "t.sst", ReaderOptions{})

	it, err := r.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	it.SetUpperBound(tkey(10))
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("bounded pass yielded %d, want 10", n)
	}

	it.Init(r, nil)
	n = 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if n != 100 {
		t.Fatalf("re-Init'd iterator yielded %d, want 100 (bound leaked)", n)
	}
}
