package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"adcache/internal/keys"
	"adcache/internal/vfs"
)

func buildTable(t testing.TB, fs vfs.FS, name string, n int, opts WriterOptions) Meta {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, opts)
	for i := 0; i < n; i++ {
		ik := keys.Make([]byte(fmt.Sprintf("key%06d", i)), uint64(i+1), keys.KindSet)
		if err := w.Add(ik, []byte(fmt.Sprintf("val%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return meta
}

func openTable(t testing.TB, fs vfs.FS, name string, opts ReaderOptions) *Reader {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWriteReadGet(t *testing.T) {
	fs := vfs.NewMem()
	meta := buildTable(t, fs, "t.sst", 1000, WriterOptions{})
	if meta.NumEntries != 1000 {
		t.Fatalf("NumEntries = %d", meta.NumEntries)
	}
	r := openTable(t, fs, "t.sst", ReaderOptions{})
	for _, i := range []int{0, 1, 500, 999} {
		v, deleted, ok, err := r.Get([]byte(fmt.Sprintf("key%06d", i)), keys.MaxSeq, nil)
		if err != nil || !ok || deleted {
			t.Fatalf("Get(%d): ok=%v deleted=%v err=%v", i, ok, deleted, err)
		}
		if string(v) != fmt.Sprintf("val%06d", i) {
			t.Fatalf("Get(%d) = %q", i, v)
		}
	}
	if _, _, ok, _ := r.Get([]byte("missing"), keys.MaxSeq, nil); ok {
		t.Fatal("found a missing key")
	}
}

func TestSnapshotVisibility(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	// Two versions of "k": seq 20 (new) and seq 10 (old). Internal order
	// puts newer first.
	w.Add(keys.Make([]byte("k"), 20, keys.KindSet), []byte("new"))
	w.Add(keys.Make([]byte("k"), 10, keys.KindSet), []byte("old"))
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r := openTable(t, fs, "t.sst", ReaderOptions{})
	if v, _, ok, _ := r.Get([]byte("k"), keys.MaxSeq, nil); !ok || string(v) != "new" {
		t.Fatalf("latest = %q ok=%v", v, ok)
	}
	if v, _, ok, _ := r.Get([]byte("k"), 15, nil); !ok || string(v) != "old" {
		t.Fatalf("snapshot 15 = %q ok=%v", v, ok)
	}
	if _, _, ok, _ := r.Get([]byte("k"), 5, nil); ok {
		t.Fatal("snapshot 5 should see nothing")
	}
}

func TestTombstone(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	w.Add(keys.Make([]byte("k"), 2, keys.KindDelete), nil)
	w.Add(keys.Make([]byte("k"), 1, keys.KindSet), []byte("v"))
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r := openTable(t, fs, "t.sst", ReaderOptions{})
	_, deleted, ok, err := r.Get([]byte("k"), keys.MaxSeq, nil)
	if err != nil || !ok || !deleted {
		t.Fatalf("tombstone not surfaced: ok=%v deleted=%v err=%v", ok, deleted, err)
	}
}

func TestIterFullScanAndSeek(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 5000, WriterOptions{BlockSize: 512})
	r := openTable(t, fs, "t.sst", ReaderOptions{})
	it, err := r.NewIter(nil)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		want := fmt.Sprintf("key%06d", i)
		if string(it.Key().UserKey()) != want {
			t.Fatalf("entry %d = %s", i, it.Key().UserKey())
		}
		i++
	}
	if i != 5000 || it.Err() != nil {
		t.Fatalf("scanned %d entries, err=%v", i, it.Err())
	}
	// Seek to a mid-table key.
	target := keys.MakeSearch([]byte("key003000"), keys.MaxSeq)
	if !it.Seek(target) || string(it.Key().UserKey()) != "key003000" {
		t.Fatalf("Seek landed on %s", it.Key())
	}
}

func TestBloomFilterSkipsAbsentKeys(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 1000, WriterOptions{BitsPerKey: 10})
	r := openTable(t, fs, "t.sst", ReaderOptions{})
	var stats ReadStats
	hits := 0
	for i := 0; i < 500; i++ {
		if _, _, ok, _ := r.Get([]byte(fmt.Sprintf("absent%06d", i)), keys.MaxSeq, &stats); ok {
			hits++
		}
	}
	if hits != 0 {
		t.Fatal("found absent keys")
	}
	if stats.FilterNegatives < 450 {
		t.Fatalf("filter rejected only %d of 500 absent lookups", stats.FilterNegatives)
	}
}

// fakeCache records Get/Insert traffic.
type fakeCache struct {
	store       map[[2]uint64][]byte
	inserts     int
	scanInserts int
}

func newFakeCache() *fakeCache { return &fakeCache{store: map[[2]uint64][]byte{}} }

func (c *fakeCache) Get(fileNum, off uint64) ([]byte, bool) {
	b, ok := c.store[[2]uint64{fileNum, off}]
	return b, ok
}

func (c *fakeCache) Insert(fileNum, off uint64, data []byte, logical int, scan bool) {
	c.store[[2]uint64{fileNum, off}] = data
	c.inserts++
	if scan {
		c.scanInserts++
	}
}

func TestBlockCacheServesRepeatReads(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 1000, WriterOptions{})
	cache := newFakeCache()
	r := openTable(t, fs, "t.sst", ReaderOptions{Cache: cache, FileNum: 7})
	var s1, s2 ReadStats
	r.Get([]byte("key000500"), keys.MaxSeq, &s1)
	if s1.BlockMisses != 1 || s1.BlockHits != 0 {
		t.Fatalf("first read stats = %+v", s1)
	}
	r.Get([]byte("key000500"), keys.MaxSeq, &s2)
	if s2.BlockHits != 1 || s2.BlockMisses != 0 {
		t.Fatalf("second read stats = %+v", s2)
	}
}

func TestScanFillBudgetLimitsInserts(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 2000, WriterOptions{BlockSize: 512})
	cache := newFakeCache()
	r := openTable(t, fs, "t.sst", ReaderOptions{Cache: cache, FileNum: 1})
	stats := &ReadStats{LimitScanFill: true, ScanFillBudget: 3}
	it, err := r.NewIter(stats)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ok := it.First(); ok && n < 1000; ok = it.Next() {
		n++
	}
	if cache.inserts != 3 {
		t.Fatalf("inserts = %d, want budget 3", cache.inserts)
	}
	if cache.scanInserts != 3 {
		t.Fatal("scan inserts not tagged")
	}
}

func TestNoCacheIterBypasses(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 500, WriterOptions{})
	cache := newFakeCache()
	r := openTable(t, fs, "t.sst", ReaderOptions{Cache: cache, FileNum: 1})
	it, err := r.NewIterNoCache()
	if err != nil {
		t.Fatal(err)
	}
	for ok := it.First(); ok; ok = it.Next() {
	}
	if cache.inserts != 0 {
		t.Fatalf("compaction-style iterator inserted %d blocks", cache.inserts)
	}
}

func TestCorruptionDetected(t *testing.T) {
	fs := vfs.NewMem()
	buildTable(t, fs, "t.sst", 100, WriterOptions{})
	f, _ := fs.Open("t.sst")
	// Flip a byte in the first data block.
	f.WriteAt([]byte{0xFF}, 10)
	if _, err := NewReader(f, ReaderOptions{}); err == nil {
		// The index/footer may still parse; a Get must then fail.
		r, _ := NewReader(f, ReaderOptions{})
		if r != nil {
			if _, _, _, err := r.Get([]byte("key000001"), keys.MaxSeq, nil); err == nil {
				t.Fatal("corruption not detected")
			}
		}
	}
}

func TestEmptyTableRejected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := NewWriter(f, WriterOptions{})
	if _, err := w.Finish(); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	f.Write([]byte("short"))
	if _, err := NewReader(f, ReaderOptions{}); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestMetaBounds(t *testing.T) {
	fs := vfs.NewMem()
	meta := buildTable(t, fs, "t.sst", 100, WriterOptions{})
	if !bytes.Equal(meta.Smallest.UserKey(), []byte("key000000")) {
		t.Fatalf("Smallest = %s", meta.Smallest.UserKey())
	}
	if !bytes.Equal(meta.Largest.UserKey(), []byte("key000099")) {
		t.Fatalf("Largest = %s", meta.Largest.UserKey())
	}
	if meta.Size == 0 {
		t.Fatal("zero Size")
	}
}
