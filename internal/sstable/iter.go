package sstable

import (
	"adcache/internal/block"
	"adcache/internal/keys"
)

// Iter is a forward iterator over a whole table. It walks the index block
// and streams through data blocks. Each data block is fetched through the
// cache with scan-fill semantics.
//
// Iter is not safe for concurrent use.
type Iter struct {
	r       *Reader
	index   *block.Iter
	data    *block.Iter
	stats   *ReadStats
	fill    bool
	bypass  bool // skip the cache entirely (compaction reads)
	err     error
	valid   bool
	exhaust bool
}

// NewIter returns an iterator over r. stats may be nil.
func (r *Reader) NewIter(stats *ReadStats) (*Iter, error) {
	idx, err := block.NewIter(r.index, icmp)
	if err != nil {
		return nil, err
	}
	return &Iter{r: r, index: idx, stats: stats, fill: !r.opts.NoFillOnScan}, nil
}

// NewIterNoCache returns an iterator that bypasses the block cache entirely:
// it neither probes nor fills. Compaction uses it so merge I/O does not
// pollute the cache or perturb eviction recency, matching RocksDB.
func (r *Reader) NewIterNoCache() (*Iter, error) {
	idx, err := block.NewIter(r.index, icmp)
	if err != nil {
		return nil, err
	}
	return &Iter{r: r, index: idx, bypass: true}, nil
}

// loadData opens the data block at the current index position.
func (i *Iter) loadData() bool {
	if len(i.index.Value()) != 16 {
		i.err = errCorruptf("bad index entry")
		return false
	}
	var data []byte
	var err error
	if i.bypass {
		data, err = i.r.readBlockRaw(decodeHandle(i.index.Value()))
	} else {
		data, err = i.r.readBlock(decodeHandle(i.index.Value()), i.fill, true, i.stats)
	}
	if err != nil {
		i.err = err
		return false
	}
	i.data, err = block.NewIter(data, icmp)
	if err != nil {
		i.err = err
		return false
	}
	return true
}

// First positions at the table's first entry.
func (i *Iter) First() bool {
	i.exhaust, i.valid = false, false
	if !i.index.First() {
		i.exhaust = true
		return false
	}
	if !i.loadData() || !i.data.First() {
		return false
	}
	i.valid = true
	return true
}

// Seek positions at the first entry with internal key >= target.
func (i *Iter) Seek(target keys.InternalKey) bool {
	i.exhaust, i.valid = false, false
	if !i.index.Seek(target) {
		i.exhaust = true
		return false
	}
	if !i.loadData() {
		return false
	}
	if !i.data.Seek(target) {
		// Target is past this block's last key (possible only due to index
		// separator semantics); advance to the next block's first entry.
		return i.nextBlock()
	}
	i.valid = true
	return true
}

// Next advances to the following entry.
func (i *Iter) Next() bool {
	if !i.valid {
		return false
	}
	if i.data.Next() {
		return true
	}
	return i.nextBlock()
}

func (i *Iter) nextBlock() bool {
	i.valid = false
	if !i.index.Next() {
		i.exhaust = true
		return false
	}
	if !i.loadData() || !i.data.First() {
		return false
	}
	i.valid = true
	return true
}

// Valid reports whether the iterator is positioned at an entry.
func (i *Iter) Valid() bool { return i.valid }

// Key returns the current internal key; valid until the next move.
func (i *Iter) Key() keys.InternalKey { return keys.InternalKey(i.data.Key()) }

// Value returns the current value; valid until the next move.
func (i *Iter) Value() []byte { return i.data.Value() }

// Err returns the first error encountered.
func (i *Iter) Err() error {
	if i.err != nil {
		return i.err
	}
	if i.data != nil && i.data.Err() != nil {
		return i.data.Err()
	}
	return i.index.Err()
}
