package sstable

import (
	"bytes"

	"adcache/internal/block"
	"adcache/internal/keys"
)

// Iter is a forward iterator over a whole table. It walks the Reader's
// parsed index by position and streams through data blocks with an embedded
// by-value block iterator, so steady-state iteration performs no per-block
// allocations. Each data block is fetched through the cache with scan-fill
// semantics.
//
// A zero Iter must be initialised with Init (or obtained from
// Reader.NewIter) before use; re-initialising a warm Iter retains its
// internal buffers. Iter is not safe for concurrent use.
type Iter struct {
	r       *Reader
	idxPos  int // position in r.index of the loaded data block
	data    block.Iter
	stats   *ReadStats
	upper   []byte // exclusive user-key upper bound; nil = unbounded
	fill    bool
	bypass  bool // skip the cache entirely (compaction reads)
	err     error
	valid   bool
	exhaust bool
}

// NewIter returns an iterator over r. stats may be nil.
func (r *Reader) NewIter(stats *ReadStats) (*Iter, error) {
	it := new(Iter)
	it.Init(r, stats)
	return it, nil
}

// NewIterNoCache returns an iterator that bypasses the block cache entirely:
// it neither probes nor fills. Compaction uses it so merge I/O does not
// pollute the cache or perturb eviction recency, matching RocksDB.
func (r *Reader) NewIterNoCache() (*Iter, error) {
	it := new(Iter)
	it.Init(r, nil)
	it.fill, it.bypass = false, true
	return it, nil
}

// Init points the iterator at r, replacing any previous state while
// retaining internal buffers. The engine pools Iters across operations and
// re-Inits them here.
func (i *Iter) Init(r *Reader, stats *ReadStats) {
	i.r = r
	i.idxPos = -1
	i.data.Reset()
	i.stats = stats
	i.upper = nil
	i.fill = !r.opts.NoFillOnScan
	i.bypass = false
	i.err = nil
	i.valid = false
	i.exhaust = false
}

// SetUpperBound restricts subsequent positioning to entries whose user key
// is strictly below upper; nil removes the bound. Once the iterator steps to
// or past the bound it reports exhaustion and loads no further blocks, so a
// bounded reader touches only the blocks its range needs. Subcompaction
// shards use this so sibling shards never re-read each other's key ranges.
func (i *Iter) SetUpperBound(upper []byte) { i.upper = upper }

// Close drops references to the Reader and stats so a pooled Iter never
// keeps a retired table's pinned index alive. The Iter may be re-used via
// Init afterwards.
func (i *Iter) Close() {
	i.r = nil
	i.stats = nil
	i.data.Reset()
	i.upper = nil
	i.err = nil
	i.valid = false
	i.exhaust = false
}

// Closed reports whether the iterator has been released with Close and not
// re-initialised since. Lifecycle tests use it to assert iterators are not
// leaked by background paths.
func (i *Iter) Closed() bool { return i.r == nil }

// checkUpper invalidates the iterator once the current entry reaches the
// upper bound. Returns true while still inside the bound.
func (i *Iter) checkUpper() bool {
	if i.upper == nil ||
		bytes.Compare(keys.InternalKey(i.data.Key()).UserKey(), i.upper) < 0 {
		return true
	}
	i.valid = false
	i.exhaust = true
	return false
}

// loadData opens the data block at index position i.idxPos.
func (i *Iter) loadData() bool {
	h := i.r.index[i.idxPos].h
	var data []byte
	var err error
	if i.bypass {
		data, err = i.r.readBlockRaw(h)
	} else {
		data, err = i.r.readBlock(h, i.fill, true, i.stats)
	}
	if err != nil {
		i.err = err
		return false
	}
	if err := i.data.Init(data, icmp); err != nil {
		i.err = err
		return false
	}
	return true
}

// latchDataErr preserves a corruption error from the current data block
// before the block iterator is re-initialised for the next block, so block
// corruption surfaces through Err instead of silently truncating the scan.
func (i *Iter) latchDataErr() bool {
	if i.err == nil {
		i.err = i.data.Err()
	}
	return i.err != nil
}

// First positions at the table's first entry.
func (i *Iter) First() bool {
	i.exhaust, i.valid = false, false
	if len(i.r.index) == 0 {
		i.exhaust = true
		return false
	}
	i.idxPos = 0
	if !i.loadData() {
		return false
	}
	if !i.data.First() {
		i.latchDataErr()
		return false
	}
	i.valid = true
	return i.checkUpper()
}

// Seek positions at the first entry with internal key >= target.
func (i *Iter) Seek(target keys.InternalKey) bool {
	i.exhaust, i.valid = false, false
	pos := i.r.findBlock(target)
	if pos == len(i.r.index) {
		i.exhaust = true
		return false
	}
	i.idxPos = pos
	if !i.loadData() {
		return false
	}
	if !i.data.Seek(target) {
		if i.latchDataErr() {
			// The in-block seek failed because the block is corrupt, not
			// because target is past the block: stop rather than skip ahead.
			return false
		}
		// Target is past this block's last key (possible only due to index
		// separator semantics); advance to the next block's first entry.
		return i.nextBlock()
	}
	i.valid = true
	return i.checkUpper()
}

// Next advances to the following entry.
func (i *Iter) Next() bool {
	if !i.valid {
		return false
	}
	if i.data.Next() {
		return i.checkUpper()
	}
	return i.nextBlock()
}

func (i *Iter) nextBlock() bool {
	i.valid = false
	if i.latchDataErr() {
		return false
	}
	if i.idxPos+1 >= len(i.r.index) {
		i.exhaust = true
		return false
	}
	i.idxPos++
	if !i.loadData() {
		return false
	}
	if !i.data.First() {
		i.latchDataErr()
		return false
	}
	i.valid = true
	return i.checkUpper()
}

// Valid reports whether the iterator is positioned at an entry.
func (i *Iter) Valid() bool { return i.valid }

// Key returns the current internal key; valid until the next move.
func (i *Iter) Key() keys.InternalKey { return keys.InternalKey(i.data.Key()) }

// Value returns the current value; valid until the next move.
func (i *Iter) Value() []byte { return i.data.Value() }

// Err returns the first error encountered.
func (i *Iter) Err() error {
	if i.err != nil {
		return i.err
	}
	return i.data.Err()
}
