// Package sstable implements the sorted-string-table file format: sorted
// immutable runs of internal keys organised into prefix-compressed data
// blocks with a Bloom filter and a block index.
//
// Layout:
//
//	[data block 0][type][crc32]
//	[data block 1][type][crc32]
//	...
//	[filter block][type][crc32]   Bloom filter over user keys (never compressed)
//	[index block][type][crc32]    last internal key of each data block → handle
//	[footer]                      fixed 48 bytes: filter handle, index handle,
//	                              entry count, magic
//
// Each block carries a 5-byte trailer: a compression-type byte (none/flate,
// negotiated per block — a block that does not shrink is stored raw) and a
// crc32c over payload+type. Handles address the physical payload, so the
// block cache naturally holds and charges for physical bytes.
//
// Every block read goes through one File.ReadAt call, so the vfs read
// counter equals the paper's "SST reads" metric, and each read consults the
// pluggable BlockCache first — the hook AdCache uses for both caching and
// block-level admission control.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"adcache/internal/block"
	"adcache/internal/bloom"
	"adcache/internal/keys"
	"adcache/internal/vfs"
)

const (
	// Magic identifies sstable files.
	Magic = 0xadca0c1e5ab1e000
	// FooterLen is the fixed footer size.
	FooterLen = 48
	// DefaultBlockSize is the target data-block size (the paper's 4 KiB).
	DefaultBlockSize = 4096
	// DefaultBitsPerKey is the paper's Bloom filter budget.
	DefaultBitsPerKey = 10
)

// ErrCorrupt reports a structurally invalid table.
var ErrCorrupt = errors.New("sstable: corrupt table")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Handle locates a block within the file.
type Handle struct {
	Offset uint64
	Length uint64 // physical payload length, excluding the 5-byte trailer
}

func (h Handle) encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, h.Offset)
	dst = binary.LittleEndian.AppendUint64(dst, h.Length)
	return dst
}

func decodeHandle(src []byte) Handle {
	return Handle{
		Offset: binary.LittleEndian.Uint64(src),
		Length: binary.LittleEndian.Uint64(src[8:]),
	}
}

// WriterOptions configures table construction.
type WriterOptions struct {
	// BlockSize is the uncompressed target size of data blocks.
	BlockSize int
	// BitsPerKey sizes the Bloom filter; 0 disables the filter.
	BitsPerKey int
	// RestartInterval for prefix compression.
	RestartInterval int
	// Compression selects per-block compression for data and index blocks
	// (the filter block is random bits and is always stored raw). The
	// default, CompressionNone, preserves the uncompressed layout.
	Compression Compression
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = block.DefaultRestartInterval
	}
	return o
}

// Meta summarises a finished table for the manifest.
type Meta struct {
	Smallest   keys.InternalKey
	Largest    keys.InternalKey
	NumEntries uint64
	// Size is the physical file size: what the bytes-on-disk actually are.
	Size uint64
	// LogicalSize is what Size would have been with compression off; the
	// Size/LogicalSize ratio is the table's on-disk compression factor.
	LogicalSize uint64
}

// Writer builds an sstable. Entries must be added in increasing internal-key
// order.
type Writer struct {
	f      vfs.File
	opts   WriterOptions
	buf    *block.Builder
	index  *block.Builder
	offset uint64

	userKeys   [][]byte // for the bloom filter
	numEntries uint64
	smallest   keys.InternalKey
	largest    keys.InternalKey
	lastUser   []byte
	err        error

	// logicalBytes counts what offset would be with compression off; the
	// physical/logical gap is the table's on-disk compression saving.
	logicalBytes uint64
}

// NewWriter starts a table in f.
func NewWriter(f vfs.File, opts WriterOptions) *Writer {
	opts = opts.withDefaults()
	return &Writer{
		f:     f,
		opts:  opts,
		buf:   block.NewBuilder(opts.RestartInterval),
		index: block.NewBuilder(1),
	}
}

// Add appends an entry. ikey must be strictly greater than the previous one.
func (w *Writer) Add(ikey keys.InternalKey, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.smallest == nil {
		w.smallest = append(keys.InternalKey(nil), ikey...)
	}
	w.largest = append(w.largest[:0], ikey...)
	uk := ikey.UserKey()
	if w.opts.BitsPerKey > 0 && string(uk) != string(w.lastUser) {
		w.userKeys = append(w.userKeys, append([]byte(nil), uk...))
	}
	w.lastUser = append(w.lastUser[:0], uk...)
	w.buf.Add(ikey, value)
	w.numEntries++
	if w.buf.EstimatedSize() >= w.opts.BlockSize {
		w.flushBlock()
	}
	return w.err
}

func (w *Writer) flushBlock() {
	if w.buf.Empty() || w.err != nil {
		return
	}
	h, err := w.writeBlock(w.buf.Finish(), true)
	if err != nil {
		w.err = err
		return
	}
	w.index.Add(w.largest, h.encode(nil))
	w.buf.Reset()
}

// writeBlock writes one block — payload, compression-type byte and crc32
// over both — and returns its handle. compressible allows the configured
// compression to apply; the block is stored raw whenever compression is off,
// disallowed, or fails to shrink the payload.
func (w *Writer) writeBlock(data []byte, compressible bool) (Handle, error) {
	payload, typ := data, CompressionNone
	if compressible && w.opts.Compression == CompressionFlate {
		if c, ok := compressFlate(data); ok {
			payload, typ = c, CompressionFlate
		}
	}
	h := Handle{Offset: w.offset, Length: uint64(len(payload))}
	if _, err := w.f.Write(payload); err != nil {
		return Handle{}, err
	}
	var trailer [TrailerLen]byte
	trailer[0] = byte(typ)
	crc := crc32.Checksum(payload, crcTable)
	crc = crc32.Update(crc, crcTable, trailer[:1])
	binary.LittleEndian.PutUint32(trailer[1:], crc)
	if _, err := w.f.Write(trailer[:]); err != nil {
		return Handle{}, err
	}
	w.offset += uint64(len(payload)) + TrailerLen
	w.logicalBytes += uint64(len(data)) + TrailerLen
	return h, nil
}

// Finish flushes remaining data, writes filter, index and footer, and
// returns the table metadata. The file is synced but not closed.
func (w *Writer) Finish() (Meta, error) {
	if w.err != nil {
		return Meta{}, w.err
	}
	if w.numEntries == 0 {
		return Meta{}, errors.New("sstable: empty table")
	}
	w.flushBlock()
	if w.err != nil {
		return Meta{}, w.err
	}

	var filterHandle Handle
	if w.opts.BitsPerKey > 0 {
		filter := bloom.Build(w.userKeys, w.opts.BitsPerKey)
		h, err := w.writeBlock(filter, false)
		if err != nil {
			return Meta{}, err
		}
		filterHandle = h
	}

	indexHandle, err := w.writeBlock(w.index.Finish(), true)
	if err != nil {
		return Meta{}, err
	}

	var footer [FooterLen]byte
	filterHandle.encode(footer[:0])
	indexHandle.encode(footer[16:16])
	binary.LittleEndian.PutUint64(footer[32:], w.numEntries)
	binary.LittleEndian.PutUint64(footer[40:], Magic)
	if _, err := w.f.Write(footer[:]); err != nil {
		return Meta{}, err
	}
	if err := w.f.Sync(); err != nil {
		return Meta{}, err
	}
	w.offset += FooterLen
	w.logicalBytes += FooterLen
	return Meta{
		Smallest:    w.smallest,
		Largest:     w.largest,
		NumEntries:  w.numEntries,
		Size:        w.offset,
		LogicalSize: w.logicalBytes,
	}, nil
}

// EstimatedSize reports bytes written so far plus the pending block.
func (w *Writer) EstimatedSize() uint64 {
	return w.offset + uint64(w.buf.EstimatedSize())
}

// NumEntries reports entries added so far.
func (w *Writer) NumEntries() uint64 { return w.numEntries }

func errCorruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
