package adcache_test

import (
	"fmt"

	"adcache"
)

// The zero-config path: an in-memory store managed by AdCache.
func Example() {
	db, err := adcache.Open(adcache.Options{CacheBytes: 4 << 20})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Put([]byte("alpha"), []byte("1"))
	db.Put([]byte("beta"), []byte("2"))
	db.Put([]byte("gamma"), []byte("3"))

	v, ok, _ := db.Get([]byte("beta"))
	fmt.Println(string(v), ok)

	kvs, _ := db.Scan([]byte("alpha"), 2)
	for _, kv := range kvs {
		fmt.Printf("%s=%s\n", kv.Key, kv.Value)
	}
	// Output:
	// 2 true
	// alpha=1
	// beta=2
}

// Running a baseline strategy on the same engine.
func ExampleOpen_blockCacheBaseline() {
	db, err := adcache.Open(adcache.Options{
		CacheBytes: 1 << 20,
		Strategy:   adcache.StrategyBlock,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	fmt.Println(db.Strategy())
	// Output: BlockCache
}

// Atomic multi-key writes.
func ExampleDB_apply() {
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	b := db.NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Put([]byte("k2"), []byte("v2"))
	b.Delete([]byte("k1"))
	if err := db.Apply(b); err != nil {
		panic(err)
	}

	_, ok1, _ := db.Get([]byte("k1"))
	v2, ok2, _ := db.Get([]byte("k2"))
	fmt.Println(ok1, string(v2), ok2)
	// Output: false v2 true
}

// Snapshot iteration over the whole store.
func ExampleDB_newIter() {
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	for _, k := range []string{"c", "a", "b"} {
		db.Put([]byte(k), []byte("v"))
	}
	it, err := db.NewIter()
	if err != nil {
		panic(err)
	}
	defer it.Close()
	for ok := it.First(); ok; ok = it.Next() {
		fmt.Printf("%s ", it.Key())
	}
	// Output: a b c
}

// Bounded range scans.
func ExampleDB_scanRange() {
	db, err := adcache.Open(adcache.Options{CacheBytes: 1 << 20})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	kvs, _ := db.ScanRange([]byte("k3"), []byte("k6"), 0)
	for _, kv := range kvs {
		fmt.Printf("%s ", kv.Key)
	}
	// Output: k3 k4 k5
}
