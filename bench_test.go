// Benchmarks regenerating every table and figure of the paper's evaluation
// at quick scale (run `cmd/adbench` for full-scale tables). Each benchmark
// executes the corresponding experiment once per iteration and reports the
// headline metric via b.ReportMetric; the full tables print under -v.
//
//	go test -bench=. -benchmem
package adcache_test

import (
	"testing"

	"adcache"
	"adcache/internal/harness"
	"adcache/internal/workload"
)

// benchScale keeps the full suite under a few minutes.
func benchScale() harness.Scale {
	sc := harness.QuickScale()
	sc.WarmOps = 8_000
	sc.MeasureOps = 8_000
	sc.PhaseOps = 8_000
	return sc
}

// BenchmarkTable2RLMemory regenerates Table 2: the RL model's memory
// overhead (≈550 KB of weights, ≈4× that during online training).
func BenchmarkTable2RLMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable2()
		b.ReportMetric(float64(rows[0].Bytes)/1024, "weights-KB")
		b.ReportMetric(float64(rows[len(rows)-1].Bytes)/1024, "training-KB")
		if i == 0 {
			b.Log("\n" + harness.FormatTable2(rows))
		}
	}
}

// BenchmarkFig1Tradeoff regenerates Figure 1: block vs result caching across
// workload patterns.
func BenchmarkFig1Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := harness.RunFig1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + harness.FormatFig1(cells))
		}
	}
}

// BenchmarkFig6ScanEvictions regenerates Figure 6: the eviction footprint of
// a single scan in block vs result caches.
func BenchmarkFig6ScanEvictions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Cache == "RangeCache" && r.ScanLen == workload.LongScanLen {
				b.ReportMetric(float64(r.Evictions), "range-evictions-per-long-scan")
			}
		}
		if i == 0 {
			b.Log("\n" + harness.FormatFig6(rows))
		}
	}
}

// BenchmarkFig7StaticWorkloads regenerates Figure 7: hit rate across cache
// sizes for every strategy under the four static workloads.
func BenchmarkFig7StaticWorkloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := harness.RunFig7(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		var adHit, blockHit float64
		var n int
		for _, c := range cells {
			if c.CacheFrac == 0.10 {
				switch c.Strategy {
				case "AdCache":
					adHit += c.Result.HitRate
					n++
				case "BlockCache":
					blockHit += c.Result.HitRate
				}
			}
		}
		if n > 0 {
			b.ReportMetric(adHit/float64(n), "adcache-hit@10%")
			b.ReportMetric(blockHit/float64(n), "block-hit@10%")
		}
		if i == 0 {
			b.Log("\n" + harness.FormatFig7(cells))
		}
	}
}

// BenchmarkFig8DynamicPhases regenerates Figure 8 and Table 4: throughput
// and hit rate through the dynamic phase schedule A→F, with rankings.
func BenchmarkFig8DynamicPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := harness.RunFig8(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		rk := harness.RankFig8(results)
		var sumT, sumH int
		for _, phase := range rk.Phases {
			sumT += rk.Throughput[phase]["AdCache"]
			sumH += rk.HitRate[phase]["AdCache"]
		}
		n := float64(len(rk.Phases))
		b.ReportMetric(float64(sumT)/n, "adcache-avg-qps-rank")
		b.ReportMetric(float64(sumH)/n, "adcache-avg-hit-rank")
		if i == 0 {
			b.Log("\n" + harness.FormatFig8(results))
		}
	}
}

// BenchmarkFig9Skewness regenerates Figure 9: hit rate across Zipfian skews
// under a 50%-update mix.
func BenchmarkFig9Skewness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := harness.RunFig9(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Strategy == "AdCache" && c.Skew == 1.2 {
				b.ReportMetric(c.Result.HitRate, "adcache-hit@skew1.2")
			}
		}
		if i == 0 {
			b.Log("\n" + harness.FormatFig9(cells))
		}
	}
}

// BenchmarkFig10Convergence regenerates Figure 10: convergence across window
// sizes and smoothing factors through a workload shift, plus the parameter
// evolution trace.
func BenchmarkFig10Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wp, ap, pp, err := harness.RunFig10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(pp.Traces) > 0 {
			last := pp.Traces[len(pp.Traces)-1]
			b.ReportMetric(last.Params.RangeRatio, "final-range-ratio")
		}
		if i == 0 {
			b.Log("\n" + harness.FormatFig10(wp, ap, pp))
		}
	}
}

// BenchmarkFig11aScaling regenerates Figure 11(a): per-client QPS as the
// client count grows with background training active.
func BenchmarkFig11aScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := harness.RunFig11a(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) > 0 {
			first, last := points[0], points[len(points)-1]
			b.ReportMetric(last.PerClientQPS/first.PerClientQPS, "qps-ratio-32c-vs-1c")
		}
		if i == 0 {
			b.Log("\n" + harness.FormatFig11a(points))
		}
	}
}

// BenchmarkFig11bAblation regenerates Figure 11(b): Range Cache vs AdCache
// with admission control only, partitioning only, and both.
func BenchmarkFig11bAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := harness.RunFig11b(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Label == "AdCache(full)" && len(s.Segments) > 0 {
				b.ReportMetric(s.Segments[len(s.Segments)-1], "adcache-full-final-hit")
			}
		}
		if i == 0 {
			b.Log("\n" + harness.FormatFig11b(series))
		}
	}
}

// BenchmarkAblations measures the repo's own design choices (boundary
// hysteresis, pretraining, Leaper-style prefetch, range-cache sharding).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunAblations(benchScale(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + harness.FormatAblations(rows))
		}
	}
}

// Per-operation microbenchmarks: raw engine speed under each strategy.

func benchDB(b *testing.B, strategy adcache.Strategy) (*harness.Runner, *workload.Generator) {
	b.Helper()
	r, err := harness.NewRunner(harness.Config{
		NumKeys: 20_000, ValueSize: 100, CacheFrac: 0.10,
		Strategy: strategy, Seed: 99,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	if err := r.Warm(workload.MixBalanced, 20_000); err != nil {
		b.Fatal(err)
	}
	return r, r.Gen
}

func benchOps(b *testing.B, strategy adcache.Strategy, mix workload.Mix) {
	r, gen := benchDB(b, strategy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next(mix)
		var err error
		switch op.Kind {
		case workload.OpGet:
			_, _, err = r.DB.Get(op.Key)
		case workload.OpScan:
			_, err = r.DB.Scan(op.Key, op.ScanLen)
		case workload.OpPut:
			err = r.DB.Put(op.Key, op.Value)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(r.DB.SSTReads())/float64(b.N), "reads/op(cum)")
}

func BenchmarkOpsBlockCacheBalanced(b *testing.B) {
	benchOps(b, adcache.StrategyBlock, workload.MixBalanced)
}

func BenchmarkOpsRangeCacheBalanced(b *testing.B) {
	benchOps(b, adcache.StrategyRange, workload.MixBalanced)
}

func BenchmarkOpsAdCacheBalanced(b *testing.B) {
	benchOps(b, adcache.StrategyAdCache, workload.MixBalanced)
}

func BenchmarkOpsAdCachePointLookup(b *testing.B) {
	benchOps(b, adcache.StrategyAdCache, workload.MixPointLookup)
}

func BenchmarkOpsAdCacheShortScan(b *testing.B) {
	benchOps(b, adcache.StrategyAdCache, workload.MixShortScan)
}
