// Multiclient: §4.4 in action. Several client goroutines hammer one store
// concurrently while AdCache's sharded range cache (key-space partitioned,
// one lock per shard) serves and admits results, and online training runs
// asynchronously in the background without blocking the serving path.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"adcache"
	"adcache/internal/lsm"
	"adcache/internal/workload"
)

const (
	numKeys      = 30_000
	opsPerClient = 20_000
	clients      = 8
)

func main() {
	// Range-shard the key space into 8 partitions (§4.4).
	var splits []string
	for i := 1; i < 8; i++ {
		splits = append(splits, string(workload.Key(numKeys*i/8)))
	}

	lsmOpts := lsm.DefaultOptions("db")
	db, err := adcache.Open(adcache.Options{
		CacheBytes:  2 << 20,
		Strategy:    adcache.StrategyAdCache,
		RangeShards: splits,
		LSM:         &lsmOpts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := workload.NewGenerator(workload.Config{NumKeys: numKeys, ValueSize: 100})
	for i := 0; i < numKeys; i++ {
		if err := db.Put(workload.Key(i), gen.InitialValue(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	mix := workload.Mix{GetPct: 40, ShortScanPct: 30, WritePct: 30}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := workload.NewGenerator(workload.Config{
				NumKeys: numKeys, ValueSize: 100, Seed: int64(c + 1),
			})
			for i := 0; i < opsPerClient; i++ {
				op := g.Next(mix)
				var err error
				switch op.Kind {
				case workload.OpGet:
					_, _, err = db.Get(op.Key)
				case workload.OpScan:
					_, err = db.Scan(op.Key, op.ScanLen)
				case workload.OpPut:
					err = db.Put(op.Key, op.Value)
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := clients * opsPerClient
	fmt.Printf("%d clients × %d ops: %s wall (%.0f ops/s aggregate)\n",
		clients, opsPerClient, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())

	c := db.CacheCounters()
	fmt.Printf("range cache: %d entries, %d get hits, %d scan hits (%d shards)\n",
		c.RangeEntries, c.RangeGetHits, c.RangeScanHits, len(splits)+1)
	fmt.Printf("block cache: %d hits / %d misses\n", c.BlockHits, c.BlockMisses)
	fmt.Printf("control windows processed asynchronously: %d\n", db.AdCache().Windows())
	fmt.Printf("SST block reads: %d\n", db.SSTReads())
}
