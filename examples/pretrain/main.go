// Pretrain: the §3.6 workflow end to end. A production-like workload is
// recorded as a trace, the actor is pretrained from the trace's windows,
// and a fresh store deploys the model — its very first control decisions
// already match the workload instead of starting from an uninformed policy.
package main

import (
	"fmt"
	"log"

	"adcache"
	"adcache/internal/core"
	"adcache/internal/lsm"
	"adcache/internal/rl"
	"adcache/internal/trace"
	"adcache/internal/vfs"
	"adcache/internal/workload"
)

const numKeys = 20_000

func main() {
	fs := vfs.NewMem()

	// 1. Record a trace while serving a point-lookup-heavy production
	// workload (the Stats Collector's "workload logs", §3.1).
	traceFile, err := fs.Create("logs/workload.trace")
	if err != nil {
		log.Fatal(err)
	}
	tw := trace.NewWriter(traceFile)
	runProduction(fs, tw)
	fmt.Printf("recorded %d operations\n", tw.Len())
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}

	// 2. Pretrain from the trace: window it, derive (state, target) pairs,
	// fit the actor (cmd/adcache-pretrain does the same from the CLI).
	f, err := fs.Open("logs/workload.trace")
	if err != nil {
		log.Fatal(err)
	}
	ops, err := trace.ReadAll(f)
	if err != nil {
		log.Fatal(err)
	}
	windows := trace.Windows(ops, 1000)
	states, targets := core.PretrainDataFromWindows(windows, 128, 7)
	agent := rl.New(rl.DefaultConfig())
	loss := agent.PretrainSupervised(states, targets, 30, 1e-3)
	fmt.Printf("pretrained on %d windows (loss %.5f)\n", len(windows), loss)
	if err := agent.Save(fs, "models/adcache"); err != nil {
		log.Fatal(err)
	}

	// 3. Deploy: a brand-new store loads the model. Its first decisions
	// already favour the range cache for this point-heavy workload.
	lsmOpts := lsm.DefaultOptions("db2")
	db, err := adcache.Open(adcache.Options{
		Dir:        "db2",
		FS:         vfs.NewMem(),
		CacheBytes: 2 << 20,
		Strategy:   adcache.StrategyAdCache,
		AdCache: core.Config{
			ModelFS:    fs,
			ModelPath:  "models/adcache",
			SyncTuning: true,
		},
		LSM: &lsmOpts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	gen := workload.NewGenerator(workload.Config{NumKeys: numKeys, ValueSize: 100, Seed: 2})
	for i := 0; i < numKeys; i++ {
		db.Put(workload.Key(i), gen.InitialValue(i))
	}
	db.Flush()
	// A couple of control windows under the live workload.
	for i := 0; i < 3000; i++ {
		op := gen.Next(workload.Mix{GetPct: 95, WritePct: 5})
		switch op.Kind {
		case workload.OpGet:
			db.Get(op.Key)
		case workload.OpPut:
			db.Put(op.Key, op.Value)
		}
	}
	p := db.AdCache().CurrentParams()
	fmt.Printf("deployed store after %d windows: range ratio %.2f (point-heavy → range cache)\n",
		db.AdCache().Windows(), p.RangeRatio)
	if p.RangeRatio < 0.5 {
		log.Fatal("pretrained policy did not favour the range cache")
	}
}

// runProduction serves the workload that the trace captures.
func runProduction(fs vfs.FS, tw *trace.Writer) {
	lsmOpts := lsm.DefaultOptions("db1")
	db, err := adcache.Open(adcache.Options{
		Dir:        "db1",
		FS:         fs,
		CacheBytes: 2 << 20,
		Strategy:   adcache.StrategyAdCache,
		Trace:      tw,
		LSM:        &lsmOpts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	gen := workload.NewGenerator(workload.Config{NumKeys: numKeys, ValueSize: 100, Seed: 1})
	for i := 0; i < numKeys; i++ {
		db.Put(workload.Key(i), gen.InitialValue(i))
	}
	db.Flush()
	for i := 0; i < 10_000; i++ {
		op := gen.Next(workload.Mix{GetPct: 95, WritePct: 5})
		switch op.Kind {
		case workload.OpGet:
			db.Get(op.Key)
		case workload.OpPut:
			db.Put(op.Key, op.Value)
		}
	}
}
