// Quickstart: open a store with the AdCache strategy, write, read, scan,
// and inspect what the cache layer is doing.
package main

import (
	"fmt"
	"log"

	"adcache"
)

func main() {
	// An in-memory store with a 4 MiB cache budget managed by AdCache.
	db, err := adcache.Open(adcache.Options{
		CacheBytes: 4 << 20,
		Strategy:   adcache.StrategyAdCache,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Writes go through the WAL and MemTable, flushing to SSTables as the
	// MemTable fills.
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("user%06d", i)
		value := fmt.Sprintf("profile-data-for-%06d", i)
		if err := db.Put([]byte(key), []byte(value)); err != nil {
			log.Fatal(err)
		}
	}

	// Point lookup.
	v, ok, err := db.Get([]byte("user001234"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Get(user001234) -> %q (found=%v)\n", v, ok)

	// Range scan: 5 consecutive keys starting at user005000.
	kvs, err := db.Scan([]byte("user005000"), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scan(user005000, 5):")
	for _, kv := range kvs {
		fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
	}

	// Delete and verify.
	if err := db.Delete([]byte("user001234")); err != nil {
		log.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("user001234")); ok {
		log.Fatal("key still visible after delete")
	}
	fmt.Println("user001234 deleted")

	// Engine and cache introspection.
	m := db.LSM().Metrics()
	fmt.Printf("\nLSM tree: %d levels in use, %d sorted runs, %d entries on disk\n",
		m.NonEmptyLevels, m.SortedRuns, m.TotalEntries)
	fmt.Printf("SST block reads so far: %d\n", db.SSTReads())

	p := db.AdCache().CurrentParams()
	fmt.Printf("AdCache boundary: %.0f%% range cache / %.0f%% block cache\n",
		p.RangeRatio*100, (1-p.RangeRatio)*100)
	fmt.Printf("admission: point threshold %.4f, scan a=%d b=%.2f\n",
		p.PointThreshold, p.ScanA, p.ScanB)
}
