// Dynamic: the paper's §1 motivation, live. The workload shifts from
// point-lookup-heavy to scan-heavy to write-heavy; AdCache's controller
// relearns the cache boundary and admission parameters at each shift, while
// a static split cannot. The program prints the learned parameters and the
// estimated hit rate as phases change.
package main

import (
	"fmt"
	"log"

	"adcache"
	"adcache/internal/core"
	"adcache/internal/lsm"
	"adcache/internal/workload"
)

func main() {
	const numKeys = 30_000

	lsmOpts := lsm.DefaultOptions("db")
	db, err := adcache.Open(adcache.Options{
		CacheBytes: 2 << 20,
		Strategy:   adcache.StrategyAdCache,
		AdCache: core.Config{
			SyncTuning:        true, // deterministic demo output
			PretrainSynthetic: true, // §3.6: skip the cold-start warm-up
			RecordTrace:       true,
		},
		LSM: &lsmOpts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := workload.NewGenerator(workload.Config{NumKeys: numKeys, ValueSize: 100})
	fmt.Println("loading", numKeys, "keys...")
	for i := 0; i < numKeys; i++ {
		if err := db.Put(workload.Key(i), gen.InitialValue(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		log.Fatal(err)
	}

	phases := []struct {
		name string
		mix  workload.Mix
	}{
		{"point-heavy   (95% get)", workload.Mix{GetPct: 95, WritePct: 5}},
		{"scan-heavy    (90% short scan)", workload.Mix{GetPct: 5, ShortScanPct: 90, WritePct: 5}},
		{"write-heavy   (60% write)", workload.Mix{GetPct: 20, ShortScanPct: 20, WritePct: 60}},
	}

	const opsPerPhase = 30_000
	for _, phase := range phases {
		fmt.Printf("\n== phase: %s ==\n", phase.name)
		for i := 0; i < opsPerPhase; i++ {
			op := gen.Next(phase.mix)
			switch op.Kind {
			case workload.OpGet:
				if _, _, err := db.Get(op.Key); err != nil {
					log.Fatal(err)
				}
			case workload.OpScan:
				if _, err := db.Scan(op.Key, op.ScanLen); err != nil {
					log.Fatal(err)
				}
			case workload.OpPut:
				if err := db.Put(op.Key, op.Value); err != nil {
					log.Fatal(err)
				}
			}
		}
		p := db.AdCache().CurrentParams()
		trace := db.AdCache().Trace()
		var hit float64
		if len(trace) > 0 {
			hit = trace[len(trace)-1].HSmoothed
		}
		fmt.Printf("learned: range ratio %.2f | point threshold %.4f | scan a=%d b=%.2f\n",
			p.RangeRatio, p.PointThreshold, p.ScanA, p.ScanB)
		fmt.Printf("smoothed hit-rate estimate: %.3f (over %d control windows)\n",
			hit, db.AdCache().Windows())
	}

	fmt.Printf("\ntotal SST block reads: %d\n", db.SSTReads())
}
