// Analytics: long range scans over a hot working set, the §3.4 scenario
// where all-or-nothing result caching backfires. The program runs the same
// scan-heavy workload against plain Range Cache (admits every scan result,
// evicting hot point-lookup entries) and AdCache (partial admission caps
// each long scan's footprint), then compares hit rates and SST reads.
package main

import (
	"fmt"
	"log"

	"adcache"
	"adcache/internal/core"
	"adcache/internal/lsm"
	"adcache/internal/workload"
)

const (
	numKeys = 30_000
	ops     = 60_000
)

func main() {
	fmt.Println("workload: 40% point lookups on hot keys, 50% long scans (64 keys), 10% writes")
	mix := workload.Mix{GetPct: 40, LongScanPct: 50, WritePct: 10}

	rcReads, rcHits := run(adcache.StrategyRange, mix)
	adReads, adHits := run(adcache.StrategyAdCache, mix)

	fmt.Printf("\n%-22s %12s %12s\n", "strategy", "SST reads", "cache hits")
	fmt.Printf("%-22s %12d %12d\n", "RangeCache (full adm.)", rcReads, rcHits)
	fmt.Printf("%-22s %12d %12d\n", "AdCache (partial adm.)", adReads, adHits)
	if adReads < rcReads {
		fmt.Printf("\nAdCache avoided %.1f%% of the SST reads by bounding each\n"+
			"long scan's cache footprint instead of evicting the hot set.\n",
			100*float64(rcReads-adReads)/float64(rcReads))
	}
}

func run(strategy adcache.Strategy, mix workload.Mix) (reads, hits int64) {
	lsmOpts := lsm.DefaultOptions("db")
	db, err := adcache.Open(adcache.Options{
		CacheBytes: 1 << 20,
		Strategy:   strategy,
		AdCache:    core.Config{SyncTuning: true, PretrainSynthetic: true},
		LSM:        &lsmOpts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := workload.NewGenerator(workload.Config{NumKeys: numKeys, ValueSize: 100})
	for i := 0; i < numKeys; i++ {
		if err := db.Put(workload.Key(i), gen.InitialValue(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrunning %s...\n", strategy)
	readsBefore := db.SSTReads()
	for i := 0; i < ops; i++ {
		op := gen.Next(mix)
		switch op.Kind {
		case workload.OpGet:
			if _, _, err := db.Get(op.Key); err != nil {
				log.Fatal(err)
			}
		case workload.OpScan:
			if _, err := db.Scan(op.Key, op.ScanLen); err != nil {
				log.Fatal(err)
			}
		case workload.OpPut:
			if err := db.Put(op.Key, op.Value); err != nil {
				log.Fatal(err)
			}
		}
	}
	c := db.CacheCounters()
	totalHits := c.RangeGetHits + c.RangeScanHits + c.BlockHits + c.KVHits
	return db.SSTReads() - readsBefore, totalHits
}
