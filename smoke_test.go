package adcache_test

import (
	"fmt"
	"testing"

	"adcache"
	"adcache/internal/harness"
	"adcache/internal/workload"
)

func TestSmokeAllStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke comparison is slow")
	}
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"point", workload.MixPointLookup},
		{"short", workload.MixShortScan},
		{"balanced", workload.MixBalanced},
		{"long", workload.MixLongScan},
	}
	for _, m := range mixes {
		fmt.Println("=== mix", m.name)
		for _, s := range adcache.Strategies() {
			r, err := harness.NewRunner(harness.Config{
				NumKeys: 20000, ValueSize: 100, CacheFrac: 0.10, Strategy: s, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Warm(m.mix, 30000); err != nil {
				t.Fatal(err)
			}
			res, err := r.Run(m.mix, 30000)
			if err != nil {
				t.Fatal(err)
			}
			extra := ""
			if ad := r.DB.AdCache(); ad != nil {
				p := ad.CurrentParams()
				extra = fmt.Sprintf(" [ratio=%.2f thr=%.4f a=%d b=%.2f win=%d]", p.RangeRatio, p.PointThreshold, p.ScanA, p.ScanB, ad.Windows())
			}
			fmt.Printf("  %-20s hit=%.3f reads/op=%.2f qps=%.0f%s\n", res.Strategy, res.HitRate, res.ReadsPerOp(), res.QPS, extra)
			r.Close()
		}
	}
}
