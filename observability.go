package adcache

import (
	"adcache/internal/core"
	"adcache/internal/lsm"
	"adcache/internal/metrics"
)

// MetricsSnapshot is the unified observability snapshot of one DB: engine
// shape and throughput counters, the strategy's cache counters, and — when
// AdCache is running — the controller state. /stats serves this struct
// verbatim.
type MetricsSnapshot struct {
	Strategy string      `json:"strategy"`
	Engine   lsm.Metrics `json:"engine"`
	// SSTReads is the paper's headline I/O metric: SST block reads issued
	// by queries (flush/compaction/recovery I/O excluded).
	SSTReads         int64            `json:"sst_reads"`
	BlockCacheHits   int64            `json:"block_cache_hits"`
	Cache            CacheCounters    `json:"cache"`
	TraceWriteErrors int64            `json:"trace_write_errors"`
	AdCache          *AdCacheSnapshot `json:"adcache,omitempty"`
}

// AdCacheSnapshot is the controller portion of a MetricsSnapshot.
type AdCacheSnapshot struct {
	Params  core.Params      `json:"params"`
	Tuning  core.TuningState `json:"tuning"`
	Windows int64            `json:"windows"`
	// Budgets is the unified memory ledger: per-component byte targets and
	// actuals for memtable, blockcache and rangecache.
	Budgets []core.Budget `json:"budgets"`
}

// Metrics returns the unified snapshot. Safe to call concurrently with
// traffic; counters are point-in-time reads, not a consistent cut.
func (d *DB) Metrics() MetricsSnapshot {
	m := MetricsSnapshot{
		Strategy:         d.kind.String(),
		Engine:           d.inner.Metrics(),
		SSTReads:         d.inner.QueryBlockReads(),
		BlockCacheHits:   d.inner.QueryBlockHits(),
		Cache:            d.strategy.Counters(),
		TraceWriteErrors: d.traceErrs.Load(),
	}
	if d.ad != nil {
		m.AdCache = &AdCacheSnapshot{
			Params:  d.ad.CurrentParams(),
			Tuning:  d.ad.TuningState(),
			Windows: d.ad.Windows(),
			Budgets: d.ad.Budgets(),
		}
	}
	return m
}

// Registry returns the DB's metrics registry — engine, cache, and strategy
// series all live here. Servers expose it as /metrics (Prometheus text)
// and /debug/vars; callers may register their own series alongside.
func (d *DB) Registry() *metrics.Registry { return d.reg }

// registerMetrics exports the public layer's series: strategy identity,
// the strategy's cache series (via the optional RegisterMetrics interface —
// the same mechanism external CacheStrategy implementations can adopt), and
// the trace-error counter.
func (d *DB) registerMetrics(reg *metrics.Registry) {
	reg.GaugeFunc(`adcache_strategy_info{strategy="`+d.kind.String()+`"}`,
		"Configured cache strategy (value is always 1).",
		func() float64 { return 1 })
	reg.CounterFunc("trace_write_errors_total",
		"Trace-log writes that failed (tracing is advisory; errors are counted, not surfaced).",
		func() int64 { return d.traceErrs.Load() })
	if rm, ok := d.strategy.(interface{ RegisterMetrics(*metrics.Registry) }); ok {
		rm.RegisterMetrics(reg)
	}
}
